//! # tm-quiesce — RCU-style quiescence for transactional fences
//!
//! A transactional fence (paper Sec 1, Fig 7 lines 33–39) blocks until every
//! transaction that was active when the fence was invoked has completed. This
//! is exactly an RCU grace period: transactions are read-side critical
//! sections, the fence is `synchronize_rcu`.
//!
//! Three layers are provided:
//!
//! * [`EpochTable`] — per-thread *epoch counters* (even = quiescent, odd =
//!   active). A fence snapshots the counters and waits until every
//!   odd-snapshot counter has moved. Precise: a thread that retires one
//!   transaction and immediately starts another does not re-capture the
//!   fence, so fences terminate even under continuous transaction traffic.
//! * [`BoolTable`] — the paper's Fig 7 Boolean `active[t]` flags, kept for
//!   fidelity (and used by the executable TL2 specification in `tm-lang`).
//!   Under continuous traffic a fence may over-wait, because a freshly
//!   started transaction makes `active[t]` true again before the fence
//!   re-reads it; it still satisfies Def 2.1's fence clause.
//! * [`GraceEngine`] — an asynchronous, *batched* grace-period engine over
//!   an [`EpochTable`]: callers obtain a [`GraceTicket`] instead of
//!   blocking, and every ticket issued during the same open period is
//!   resolved by one shared scan of the epoch table — the `call_rcu` to
//!   [`EpochTable::wait_quiescent`]'s `synchronize_rcu`. The engine is
//!   also an *epoch-based reclamation* facility:
//!   [`GraceEngine::defer_drop`] retires a heap allocation under the open
//!   period, and the completing scan drops every retirement whose period
//!   has elapsed (the `kfree_rcu` to `issue`'s `call_rcu`). Anything still
//!   retired when the engine itself drops is freed then — exactly once in
//!   every configuration.
//! * [`GraceDriver`] — an *optional* background thread that retires grace
//!   periods with **zero** pollers or waiters. Without a driver the engine
//!   advances only cooperatively, so a fire-and-forget
//!   [`GraceTicket::on_complete`] callback fires only when some later
//!   caller happens to drive the engine — possibly never. The driver closes
//!   that liveness hole: it parks until [`GraceEngine::issue`] (or a
//!   callback registration) wakes it, then drives until nothing is
//!   [pending](GraceEngine::has_pending). The engine stays fully functional
//!   thread-free when no driver is attached. When idle, the driver's
//!   fallback tick backs off adaptively (up to
//!   [`GraceDriver::MAX_IDLE_TICK`]) so a quiet runtime costs almost
//!   nothing; explicit wakeups are never delayed.
//!
//! # Example
//!
//! ```
//! use tm_quiesce::GraceEngine;
//!
//! let engine = GraceEngine::new(2); // two thread slots
//! engine.epochs().enter(0);         // slot 0 opens a critical section
//! let ticket = engine.issue();      // request a grace period: no blocking
//! assert!(!ticket.poll(), "slot 0 is still inside its critical section");
//! engine.epochs().exit(0);
//! ticket.wait();                    // now elapses (one epoch-table scan)
//! assert!(engine.is_complete(ticket.period()));
//! ```

#![warn(missing_docs)]

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};
use tm_chaos::{Chaos, Site};
use tm_telemetry::{EventKind, Telemetry};

/// Per-thread epoch counters. Even values mean the slot is quiescent, odd
/// values mean a critical section (transaction) is in progress.
pub struct EpochTable {
    epochs: Box<[CachePadded<AtomicU64>]>,
}

impl EpochTable {
    /// Create a table with `nthreads` slots, all quiescent.
    pub fn new(nthreads: usize) -> Self {
        let epochs = (0..nthreads)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EpochTable { epochs }
    }

    /// Number of thread slots in the table.
    pub fn nthreads(&self) -> usize {
        self.epochs.len()
    }

    /// Mark slot `t` active. Must currently be quiescent.
    #[inline]
    pub fn enter(&self, t: usize) {
        let e = self.epochs[t].fetch_add(1, Ordering::SeqCst);
        debug_assert!(e.is_multiple_of(2), "enter() on an already-active slot");
    }

    /// Mark slot `t` quiescent. Must currently be active.
    #[inline]
    pub fn exit(&self, t: usize) {
        let e = self.epochs[t].fetch_add(1, Ordering::SeqCst);
        debug_assert!(e % 2 == 1, "exit() on a quiescent slot");
    }

    /// Is slot `t` currently active?
    #[inline]
    pub fn is_active(&self, t: usize) -> bool {
        self.epochs[t].load(Ordering::SeqCst) % 2 == 1
    }

    /// Current epoch of slot `t`.
    #[inline]
    pub fn epoch(&self, t: usize) -> u64 {
        self.epochs[t].load(Ordering::SeqCst)
    }

    /// Block until every critical section active at the time of the call has
    /// completed (an RCU grace period). `exclude` skips the caller's own
    /// slot, which would otherwise deadlock if called between `enter`/`exit`.
    pub fn wait_quiescent(&self, exclude: Option<usize>) {
        self.wait_quiescent_filtered(exclude, |_| true);
    }

    /// Like [`Self::wait_quiescent`], but only waits for slots accepted by
    /// `wait_for`. Used to model *buggy* fence placements (e.g. skipping
    /// read-only transactions, the GCC libitm bug class reproduced in E14).
    pub fn wait_quiescent_filtered(
        &self,
        exclude: Option<usize>,
        wait_for: impl Fn(usize) -> bool,
    ) {
        // Phase 1 (Fig 7 lines 35–36): snapshot.
        let snap: Vec<u64> = self
            .epochs
            .iter()
            .map(|e| e.load(Ordering::SeqCst))
            .collect();
        // Phase 2 (lines 37–39): wait for every active snapshot to move.
        for (t, &s) in snap.iter().enumerate() {
            if Some(t) == exclude || s % 2 == 0 || !wait_for(t) {
                continue;
            }
            // Yield on every re-check: the slot we are waiting on can only
            // advance if its thread gets scheduled, and on a single-core
            // host a spin-mostly loop (the previous yield-every-64 shape)
            // just burns the waiter's whole quantum against a stale epoch.
            while self.epochs[t].load(Ordering::SeqCst) == s {
                std::thread::yield_now();
            }
        }
    }
}

/// A completion callback registered on a grace period.
type Callback = Box<dyn FnOnce() + Send>;

/// A retired heap allocation awaiting its grace period: dropping the box is
/// the reclamation.
type Retired = Box<dyn Send>;

/// A [`GraceDriver`] tick hook: invoked once per driver wakeup (explicit or
/// fallback tick), outside any engine lock. `Arc`ed so the driver thread
/// can call it without holding the installation mutex.
type TickHook = Arc<dyn Fn() + Send + Sync>;

/// One slot a scan is still waiting on.
struct PendingSlot {
    /// Epoch-table slot index.
    slot: usize,
    /// The slot's (odd) epoch at snapshot time; it has moved once the live
    /// counter differs.
    epoch: u64,
    /// Already named in a [`EventKind::StallReport`] for *this* scan — the
    /// once-per-slot-per-scan dedup.
    reported: bool,
}

/// State of the (at most one) epoch-table scan in progress.
struct ScanState {
    /// Period the scan will complete when `pending` drains; 0 = no scan.
    target: u64,
    /// Slots still awaited: every slot that was active when the scan's
    /// snapshot was taken and has not moved since.
    pending: Vec<PendingSlot>,
    /// When the scan opened (period closed). Always sampled — it feeds both
    /// the grace-duration histogram at completion and the stall detector's
    /// "pinned for how long" arithmetic while the scan is waiting.
    started: Option<Instant>,
}

/// One epoch slot the stall detector caught pinned past the threshold while
/// a grace scan was waiting on it — the observable face of a thread parked
/// (or dead, or panicked without unwinding) inside a transaction.
#[derive(Clone, Debug)]
pub struct StallInfo {
    /// The offending epoch-table slot.
    pub slot: usize,
    /// How long the scan had been waiting on it when detected.
    pub pinned: Duration,
    /// The grace period the scan is trying to retire.
    pub period: u64,
}

/// An asynchronous, batched grace-period engine over an [`EpochTable`].
///
/// Grace periods are numbered monotonically. At any moment exactly one
/// period is *open*: [`GraceEngine::issue`] stamps a [`GraceTicket`] with
/// it and returns immediately. The first driver to make progress *closes*
/// the open period (opening the next) and snapshots the epoch table; when
/// every snapshotted-active slot has moved, the period — and every ticket
/// stamped with it or any earlier period — is complete. Coalescing is the
/// point: however many tickets were issued while a period was open, they
/// all resolve on that one scan.
///
/// There is no dedicated grace-period thread. Periods advance
/// *cooperatively*: any caller of [`GraceTicket::poll`] or
/// [`GraceTicket::wait`] (or [`GraceEngine::drive`] directly) performs one
/// bounded, non-blocking step of the scan. Waiters yield between steps —
/// they never hard-spin — so the engine is safe on a single-core host.
///
/// A ticket's quiescence guarantee: every critical section active when
/// `issue` was called has completed by the time the ticket resolves. (The
/// completing scan's snapshot is taken after the ticket's period closes,
/// which is after the issue; waiting for the snapshot's active slots is
/// conservative — it can only over-wait, never under-wait.)
///
/// Callers must not drive a ticket from *inside* a critical section of the
/// epoch table — the scan would wait on the caller's own slot. Fences are
/// issued and awaited outside transactions, so this does not arise in the
/// STM runtime.
pub struct GraceEngine {
    epochs: EpochTable,
    /// Period currently accepting tickets. Starts at 1.
    open: CachePadded<AtomicU64>,
    /// Highest completed period: every ticket with `period <= completed`
    /// has its grace period elapsed. Starts at 0.
    completed: CachePadded<AtomicU64>,
    /// Completed epoch-table scans (each scan retires one period, however
    /// many tickets were batched behind it) — the coalescing measurement.
    scans: CachePadded<AtomicU64>,
    /// Serializes drivers; held only for one bounded step at a time.
    scan: Mutex<ScanState>,
    /// Completion callbacks keyed by period, run by the completing driver.
    callbacks: Mutex<Vec<(u64, Callback)>>,
    /// Highest period ever stamped onto an issued ticket. Together with
    /// `completed` this is the engine's *pending* view: work is outstanding
    /// exactly while `issued > completed` (every callback is registered
    /// through an issued ticket, so tickets subsume callbacks).
    issued: CachePadded<AtomicU64>,
    /// Is a [`GraceDriver`] attached? Gates the wake notification so the
    /// driver-free configuration pays nothing beyond one relaxed load per
    /// issue.
    driver_attached: AtomicBool,
    /// Wake channel for the attached driver. `issue` and `on_complete`
    /// notify under the mutex, the driver re-checks `has_pending` under the
    /// same mutex before sleeping, so wakeups cannot be lost.
    wake: Mutex<()>,
    wake_cv: Condvar,
    /// Optional telemetry sink: set once by the owning runtime. When
    /// present and enabled, every completed scan records its duration into
    /// the grace histogram plus a `GraceScan` flight-recorder event. When
    /// absent, the completion path pays one `OnceLock` load.
    telemetry: OnceLock<Arc<Telemetry>>,
    /// Optional fault-injection plan: set once by the owning runtime. An
    /// armed plan may stretch scan steps ([`Site::GraceScan`] delays) —
    /// exactly the descheduled-scanner hazard the stall detector and the
    /// bounded fence waits exist for.
    chaos: OnceLock<Arc<Chaos>>,
    /// Stall threshold in nanoseconds (see [`Self::set_stall_threshold`]).
    stall_threshold_ns: AtomicU64,
    /// Total [`StallInfo`] reports raised (each slot at most once per scan).
    stall_reports: CachePadded<AtomicU64>,
    /// Deferred-drop list: allocations retired via [`Self::defer_drop`],
    /// each stamped with the period that was open at retirement. Collected
    /// by the completing scan; whatever remains drops with the engine.
    retired: Mutex<Vec<(u64, Retired)>>,
    /// Total allocations ever retired through [`Self::defer_drop`].
    retired_total: CachePadded<AtomicU64>,
    /// Total retired allocations dropped by collection passes (excludes
    /// leftovers freed at engine drop).
    collected_total: CachePadded<AtomicU64>,
    /// Collection passes that actually dropped something — with
    /// `retired_total` this is the reclamation batching factor.
    collect_passes: CachePadded<AtomicU64>,
}

impl GraceEngine {
    /// An engine over a fresh [`EpochTable`] with `nthreads` slots.
    pub fn new(nthreads: usize) -> Arc<Self> {
        Arc::new(GraceEngine {
            epochs: EpochTable::new(nthreads),
            open: CachePadded::new(AtomicU64::new(1)),
            completed: CachePadded::new(AtomicU64::new(0)),
            scans: CachePadded::new(AtomicU64::new(0)),
            scan: Mutex::new(ScanState {
                target: 0,
                pending: Vec::new(),
                started: None,
            }),
            callbacks: Mutex::new(Vec::new()),
            issued: CachePadded::new(AtomicU64::new(0)),
            driver_attached: AtomicBool::new(false),
            wake: Mutex::new(()),
            wake_cv: Condvar::new(),
            telemetry: OnceLock::new(),
            chaos: OnceLock::new(),
            stall_threshold_ns: AtomicU64::new(Self::DEFAULT_STALL_THRESHOLD.as_nanos() as u64),
            stall_reports: CachePadded::new(AtomicU64::new(0)),
            retired: Mutex::new(Vec::new()),
            retired_total: CachePadded::new(AtomicU64::new(0)),
            collected_total: CachePadded::new(AtomicU64::new(0)),
            collect_passes: CachePadded::new(AtomicU64::new(0)),
        })
    }

    /// Default [stall threshold](Self::set_stall_threshold): long enough
    /// that an honest scan on a loaded host never trips it, short enough
    /// that a parked transaction is named within a driver tick or two.
    pub const DEFAULT_STALL_THRESHOLD: Duration = Duration::from_millis(100);

    /// Attach a fault-injection plan (at most once; later calls ignored):
    /// scan steps then consult it for [`Site::GraceScan`] delays.
    pub fn set_chaos(&self, chaos: Arc<Chaos>) {
        let _ = self.chaos.set(chaos);
    }

    /// Reconfigure how long a scan must wait on one unmoved slot before the
    /// slot is considered *stalled* (reported via [`Self::check_stalls`]).
    pub fn set_stall_threshold(&self, threshold: Duration) {
        self.stall_threshold_ns
            .store(threshold.as_nanos() as u64, Ordering::Relaxed);
    }

    /// The current stall threshold.
    pub fn stall_threshold(&self) -> Duration {
        Duration::from_nanos(self.stall_threshold_ns.load(Ordering::Relaxed))
    }

    /// Total stall reports raised so far (each slot at most once per scan).
    pub fn stall_reports(&self) -> u64 {
        self.stall_reports.load(Ordering::SeqCst)
    }

    /// Attach a telemetry sink (at most once; later calls are ignored):
    /// completed scans then feed the grace-duration histogram and record
    /// `GraceScan` events on the sink's engine slot.
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        let _ = self.telemetry.set(telemetry);
    }

    /// The epoch table the engine scans. Critical sections register here
    /// exactly as with a bare table.
    pub fn epochs(&self) -> &EpochTable {
        &self.epochs
    }

    /// The period currently accepting tickets.
    pub fn open_period(&self) -> u64 {
        self.open.load(Ordering::SeqCst)
    }

    /// Highest completed period.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::SeqCst)
    }

    /// Number of full epoch-table scans performed so far. One scan retires
    /// one period — and with it every ticket the period coalesced — so
    /// `tickets issued / scans` is the batching factor.
    pub fn scans(&self) -> u64 {
        self.scans.load(Ordering::SeqCst)
    }

    /// Has `period` completed?
    pub fn is_complete(&self, period: u64) -> bool {
        self.completed() >= period
    }

    /// Highest period ever stamped onto an issued ticket (0 before the
    /// first issue). This is the period a background driver drives toward.
    pub fn issued(&self) -> u64 {
        self.issued.load(Ordering::SeqCst)
    }

    /// Is any issued ticket's period still incomplete? The view a
    /// [`GraceDriver`] parks on: callbacks are always registered through an
    /// issued ticket, so `!has_pending()` means no ticket can be unresolved
    /// and no callback can be waiting.
    pub fn has_pending(&self) -> bool {
        self.issued() > self.completed()
    }

    /// Wake an attached driver (no-op when none is). Callers notify under
    /// the wake mutex and the driver re-checks [`Self::has_pending`] under
    /// it before sleeping, so a wakeup racing a park is never lost.
    fn notify_driver(&self) {
        if self.driver_attached.load(Ordering::Relaxed) {
            let _guard = self.wake.lock().unwrap();
            self.wake_cv.notify_all();
        }
    }

    /// Request a grace period: stamp a ticket with the open period. Never
    /// blocks; the returned ticket resolves once every critical section
    /// active now has completed. Wakes the attached [`GraceDriver`], if
    /// any, so fire-and-forget tickets retire without any poller.
    pub fn issue(self: &Arc<Self>) -> GraceTicket {
        let period = self.open.load(Ordering::SeqCst);
        // fetch_max, not store: a concurrent scan may have closed a later
        // period between our load and this line, and `issued` must never
        // move backwards past a stamp another issuer already published.
        self.issued.fetch_max(period, Ordering::SeqCst);
        self.notify_driver();
        GraceTicket {
            engine: Arc::clone(self),
            period,
        }
    }

    /// Retire a heap allocation through the engine: `garbage` is stamped
    /// with the open period and dropped by the first scan to complete it —
    /// i.e. only after every critical section active *now* has exited, so
    /// in-epoch readers still dereferencing the allocation stay safe. This
    /// is the epoch-based-reclamation face of the engine: the `kfree_rcu`
    /// to [`Self::issue`]'s `call_rcu`.
    ///
    /// Never blocks beyond the retire-list mutex. Retirement counts as
    /// pending work ([`Self::has_pending`]), so an attached [`GraceDriver`]
    /// collects it within bounded time with zero pollers; without a driver
    /// it is collected by whichever caller next completes a scan, and at
    /// the latest when the engine drops. Either way each retired box is
    /// dropped exactly once.
    pub fn defer_drop(&self, garbage: Retired) {
        let period = self.open.load(Ordering::SeqCst);
        self.retired.lock().unwrap().push((period, garbage));
        self.retired_total.fetch_add(1, Ordering::SeqCst);
        // Mirror `issue`: raise the pending view so a driver (or drop
        // drain) knows reclamation work is outstanding, and wake it.
        self.issued.fetch_max(period, Ordering::SeqCst);
        self.notify_driver();
    }

    /// Total allocations ever retired through [`Self::defer_drop`].
    pub fn retired_boxes(&self) -> u64 {
        self.retired_total.load(Ordering::SeqCst)
    }

    /// Total retired allocations dropped by collection passes so far.
    pub fn collected_boxes(&self) -> u64 {
        self.collected_total.load(Ordering::SeqCst)
    }

    /// Collection passes that dropped at least one retired allocation.
    /// `retired_boxes / collect_passes` is the reclamation batching factor.
    pub fn collect_passes(&self) -> u64 {
        self.collect_passes.load(Ordering::SeqCst)
    }

    /// Retired allocations still awaiting their grace period.
    pub fn retired_pending(&self) -> usize {
        self.retired.lock().unwrap().len()
    }

    /// Drop every retirement whose period has completed. Runs on the scan
    /// completion path (and is cheap to call anytime): take the list under
    /// its lock, keep the not-yet-due entries, drop the due ones *outside*
    /// the lock — a retired value's own drop may retire more.
    fn collect_retired(&self) {
        let due: Vec<(u64, Retired)> = {
            let mut retired = self.retired.lock().unwrap();
            if retired.is_empty() {
                return;
            }
            let completed = self.completed();
            let (due, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut *retired)
                .into_iter()
                .partition(|(p, _)| *p <= completed);
            *retired = keep;
            due
        };
        if due.is_empty() {
            return;
        }
        self.collected_total
            .fetch_add(due.len() as u64, Ordering::SeqCst);
        self.collect_passes.fetch_add(1, Ordering::SeqCst);
        drop(due);
    }

    /// One cooperative, non-blocking driving step toward completing
    /// `period`; returns whether it has completed. If no scan is in
    /// progress, this closes the open period and snapshots the epoch table;
    /// otherwise it re-checks the in-progress scan's pending slots once.
    /// Never waits: callers that need completion loop with `yield_now`
    /// between steps (which is exactly what [`GraceTicket::wait`] does).
    pub fn drive(&self, period: u64) -> bool {
        if self.is_complete(period) {
            return true;
        }
        // Another driver holding the lock is making progress on our behalf;
        // don't contend, just report current completion.
        let Ok(mut st) = self.scan.try_lock() else {
            return self.is_complete(period);
        };
        // Fault injection: a scanner descheduled mid-step, with the scan
        // lock held — the hazard bounded fence waits must survive.
        if let Some(chaos) = self.chaos.get() {
            chaos.maybe_delay(Site::GraceScan);
        }
        if st.target == 0 {
            // Close the open period; tickets issued from here on join the
            // next one. The snapshot below is therefore taken after every
            // coalesced ticket's issue, as the quiescence guarantee needs.
            let target = self.open.fetch_add(1, Ordering::SeqCst);
            st.target = target;
            st.pending.clear();
            // Sampled unconditionally: the stall detector needs a wall-clock
            // origin while the scan waits, not only at completion. One clock
            // read per scan, amortized over the whole table sweep.
            st.started = Some(Instant::now());
            for t in 0..self.epochs.nthreads() {
                let e = self.epochs.epoch(t);
                if e % 2 == 1 {
                    st.pending.push(PendingSlot {
                        slot: t,
                        epoch: e,
                        reported: false,
                    });
                }
            }
        }
        st.pending.retain(|p| self.epochs.epoch(p.slot) == p.epoch);
        if st.pending.is_empty() {
            let done = st.target;
            st.target = 0;
            let started = st.started.take();
            self.scans.fetch_add(1, Ordering::SeqCst);
            self.completed.store(done, Ordering::SeqCst);
            drop(st);
            if let (Some(tel), Some(s0)) = (self.telemetry.get(), started) {
                tel.record_grace_scan(done, s0.elapsed().as_nanos() as u64);
            }
            self.run_callbacks();
            self.collect_retired();
        }
        self.is_complete(period)
    }

    /// Stall detection: if the in-progress scan has been waiting past the
    /// [threshold](Self::set_stall_threshold), name every still-unmoved slot
    /// it is pinned on — once per slot per scan — raising an
    /// [`EventKind::StallReport`] on the telemetry engine slot for each.
    /// Returns the *newly* reported stalls. Called from the [`GraceDriver`]
    /// tick and from bounded ticket waits; cheap when no scan is open
    /// (one `try_lock`), and never blocks on a busy scan lock.
    pub fn check_stalls(&self) -> Vec<StallInfo> {
        let Ok(mut st) = self.scan.try_lock() else {
            return Vec::new();
        };
        self.collect_stalls(&mut st, true)
    }

    /// The slots currently pinned past the stall threshold, without the
    /// once-per-scan dedup or telemetry side effects — the view a timed-out
    /// fence wait embeds in its error so the caller can name the offender
    /// even when the driver tick already reported it.
    pub fn current_stalls(&self) -> Vec<StallInfo> {
        let Ok(mut st) = self.scan.try_lock() else {
            return Vec::new();
        };
        self.collect_stalls(&mut st, false)
    }

    fn collect_stalls(&self, st: &mut ScanState, report: bool) -> Vec<StallInfo> {
        if st.target == 0 {
            return Vec::new();
        }
        let Some(s0) = st.started else {
            return Vec::new();
        };
        let pinned = s0.elapsed();
        if pinned < self.stall_threshold() {
            return Vec::new();
        }
        let period = st.target;
        let mut out = Vec::new();
        for p in st.pending.iter_mut() {
            // A slot that moved since the snapshot is no stall — the scan
            // just has not re-checked yet.
            if self.epochs.epoch(p.slot) != p.epoch {
                continue;
            }
            if report {
                if p.reported {
                    continue;
                }
                p.reported = true;
                self.stall_reports.fetch_add(1, Ordering::SeqCst);
                if let Some(tel) = self.telemetry.get() {
                    tel.record_engine_event(EventKind::StallReport {
                        stalled_slot: p.slot as u64,
                        pinned_ns: pinned.as_nanos() as u64,
                        period,
                    });
                }
            }
            out.push(StallInfo {
                slot: p.slot,
                pinned,
                period,
            });
        }
        out
    }

    /// Register `f` to run when `period` completes (immediately, on this
    /// thread, if it already has; otherwise on the completing driver's
    /// thread). With a [`GraceDriver`] attached the callback fires within
    /// bounded time even if nobody ever polls or waits; without one it
    /// rides whichever caller next drives the engine.
    pub fn on_complete(&self, period: u64, f: impl FnOnce() + Send + 'static) {
        {
            let mut cbs = self.callbacks.lock().unwrap();
            // Checked under the lock: the completing driver stores
            // `completed` *before* draining callbacks, so either we observe
            // completion here or our push is visible to its drain.
            if !self.is_complete(period) {
                cbs.push((period, Box::new(f)));
                drop(cbs);
                self.notify_driver();
                return;
            }
        }
        f();
    }

    fn run_callbacks(&self) {
        // Drain under the lock, run outside it: callbacks may issue new
        // tickets or register further callbacks.
        let due: Vec<Callback> = {
            let mut cbs = self.callbacks.lock().unwrap();
            let completed = self.completed();
            let mut due = Vec::new();
            cbs.retain_mut(|(p, f)| {
                if *p <= completed {
                    due.push(std::mem::replace(f, Box::new(|| ())));
                    false
                } else {
                    true
                }
            });
            due
        };
        for f in due {
            f();
        }
    }
}

/// A claim on a numbered grace period of a [`GraceEngine`] — the
/// asynchronous fence. Obtained from [`GraceEngine::issue`]; resolves once
/// every critical section active at issue has completed.
#[derive(Clone)]
pub struct GraceTicket {
    engine: Arc<GraceEngine>,
    period: u64,
}

impl GraceTicket {
    /// The grace period this ticket is stamped with.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The engine that issued this ticket.
    pub fn engine(&self) -> &Arc<GraceEngine> {
        &self.engine
    }

    /// Non-blocking completion check that also contributes one driving
    /// step, so polling callers collectively advance the period.
    pub fn poll(&self) -> bool {
        self.engine.drive(self.period)
    }

    /// Block (cooperatively) until the grace period has elapsed: drive one
    /// step, yield, repeat. Never hard-spins — on a single-core host the
    /// yield is what lets the awaited transactions run at all. Periodically
    /// runs the [stall detector](GraceEngine::check_stalls), so an unbounded
    /// wait pinned by a parked transaction at least *names* the offender in
    /// telemetry while it waits.
    pub fn wait(&self) {
        let mut steps = 0u32;
        while !self.engine.drive(self.period) {
            steps = steps.wrapping_add(1);
            if steps.is_multiple_of(Self::STALL_CHECK_EVERY) {
                self.engine.check_stalls();
            }
            std::thread::yield_now();
        }
    }

    /// Driving steps between stall-detector runs inside [`Self::wait`] /
    /// [`Self::wait_timeout`]: rare enough that the `Instant` sample and
    /// scan `try_lock` cost nothing against thousands of yields, frequent
    /// enough that a stalled wait reports within tens of milliseconds.
    const STALL_CHECK_EVERY: u32 = 1024;

    /// [`Self::wait`], bounded: give up after `timeout`, returning a
    /// [`WaitTimeout`] that names every slot the scan is pinned on. The
    /// ticket itself stays valid — the grace period is still outstanding
    /// and may be re-waited, polled, or handed a callback; a timeout only
    /// bounds *this* wait, it never abandons the period.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<(), WaitTimeout> {
        let deadline = Instant::now() + timeout;
        let mut steps = 0u32;
        while !self.engine.drive(self.period) {
            steps = steps.wrapping_add(1);
            if steps.is_multiple_of(Self::STALL_CHECK_EVERY) {
                self.engine.check_stalls();
            }
            if Instant::now() >= deadline {
                // Report (driver may be absent) and collect the undeduped
                // view, so the error names offenders already reported by an
                // earlier tick.
                self.engine.check_stalls();
                return Err(WaitTimeout {
                    period: self.period,
                    waited: timeout,
                    stalled: self.engine.current_stalls(),
                });
            }
            std::thread::yield_now();
        }
        Ok(())
    }

    /// Run `f` when the grace period elapses (immediately if it already
    /// has; otherwise on whichever thread completes the period).
    ///
    /// Liveness caveat: without a [`GraceDriver`] attached to the engine,
    /// a fire-and-forget callback only runs when *some* caller later
    /// drives the engine — if nobody ever polls or waits, it never fires.
    /// Attach a driver for the `call_rcu`-style guarantee that the
    /// callback runs within bounded time regardless of pollers.
    pub fn on_complete(self, f: impl FnOnce() + Send + 'static) {
        self.engine.on_complete(self.period, f);
    }
}

/// A bounded [`GraceTicket::wait_timeout`] expired before its grace period
/// completed. Carries everything the caller needs to act on the stall:
/// which period is stuck and which epoch slots it is pinned on (empty when
/// the wait was simply too short for an honest scan — distinguish via
/// `stalled.is_empty()`).
#[derive(Clone, Debug)]
pub struct WaitTimeout {
    /// The grace period still outstanding.
    pub period: u64,
    /// How long the caller waited.
    pub waited: Duration,
    /// Slots pinned past the stall threshold at timeout (undeduped view).
    pub stalled: Vec<StallInfo>,
}

impl std::fmt::Display for WaitTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "grace period {} incomplete after {:?}",
            self.period, self.waited
        )?;
        if !self.stalled.is_empty() {
            let slots: Vec<String> = self
                .stalled
                .iter()
                .map(|s| format!("{} ({:?})", s.slot, s.pinned))
                .collect();
            write!(f, "; stalled slots: {}", slots.join(", "))?;
        }
        Ok(())
    }
}

impl std::error::Error for WaitTimeout {}

/// A background grace-period driver: one parked thread that owns the
/// liveness of fire-and-forget tickets on a [`GraceEngine`].
///
/// The thread sleeps on the engine's wake channel (with a `tick` timeout as
/// a belt-and-braces fallback) and, whenever any issued period is still
/// incomplete, repeatedly calls [`GraceEngine::drive`] — yielding between
/// steps, never hard-spinning — until the engine is
/// [drained](GraceEngine::has_pending). Consequences:
///
/// * [`GraceTicket::on_complete`] callbacks fire within bounded time with
///   **zero** pollers or waiters (the `call_rcu` guarantee).
/// * Every privatizer can fully overlap its post-fence work: nobody has to
///   donate cycles to the scan.
/// * Coalescing is preserved: the driver closes a period and scans exactly
///   as a cooperative caller would, so N tickets issued while one period is
///   open still retire on one epoch-table scan.
///
/// Completion callbacks run on the driver thread once it is attached; they
/// must not block indefinitely (a blocked callback blocks every later
/// period's retirement, exactly as with a cooperative completer).
///
/// Dropping the driver is a *clean shutdown*: the thread first drains —
/// drives every outstanding period to completion and runs its callbacks —
/// then exits, so no requested grace period or registered callback is ever
/// lost. The drain waits on in-flight critical sections, mirroring the
/// blocking-drop contract of an unresolved ticket.
pub struct GraceDriver {
    engine: Arc<GraceEngine>,
    stop: Arc<AtomicBool>,
    /// Fallback timeouts the thread woke from with *nothing to do* (the
    /// waste an adaptive idle tick minimizes); shared with the thread.
    idle_wakeups: Arc<AtomicU64>,
    /// Optional per-wakeup hook (see [`Self::set_tick_hook`]); shared with
    /// the thread.
    tick_hook: Arc<Mutex<Option<TickHook>>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl GraceDriver {
    /// Minimum (and initial) fallback tick: how long the driver first
    /// sleeps when idle before re-checking for work it was not explicitly
    /// woken for. 1 ms keeps worst-case callback latency bounded while the
    /// engine is actually issuing.
    pub const DEFAULT_TICK: Duration = Duration::from_millis(1);

    /// Cap of the adaptive idle backoff: with no issues arriving, the
    /// fallback tick doubles from the spawn tick up to this bound, so an
    /// idle runtime takes ~20 fallback wakeups per second instead of
    /// ~1000. Real work always resets the tick — and an
    /// [`issue`](GraceEngine::issue) wakes the driver through the condvar
    /// immediately, so the backoff never delays a requested grace period.
    pub const MAX_IDLE_TICK: Duration = Duration::from_millis(50);

    /// Attach a driver to `engine` and start its thread. `tick` is the
    /// minimum fallback tick (see [`Self::DEFAULT_TICK`]); when idle the
    /// driver scales it by observed issue rate, doubling up to
    /// [`Self::MAX_IDLE_TICK`] while no work arrives. At most one driver
    /// may be attached to an engine at a time (checked): a second driver's
    /// shutdown would clear the attach flag under the first one, silently
    /// downgrading its wakeups to the timeout tick.
    pub fn spawn(engine: Arc<GraceEngine>, tick: Duration) -> Self {
        assert!(
            !engine.driver_attached.swap(true, Ordering::SeqCst),
            "a GraceDriver is already attached to this engine"
        );
        let stop = Arc::new(AtomicBool::new(false));
        let idle_wakeups = Arc::new(AtomicU64::new(0));
        let tick_hook: Arc<Mutex<Option<TickHook>>> = Arc::new(Mutex::new(None));
        let thread = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let idle_wakeups = Arc::clone(&idle_wakeups);
            let tick_hook = Arc::clone(&tick_hook);
            std::thread::Builder::new()
                .name("tm-grace-driver".into())
                .spawn(move || Self::run(&engine, &stop, tick, &idle_wakeups, &tick_hook))
                .expect("spawn grace-period driver thread")
        };
        GraceDriver {
            engine,
            stop,
            idle_wakeups,
            tick_hook,
            thread: Some(thread),
        }
    }

    /// Install (or replace) the driver's *tick hook*: a callback the driver
    /// thread invokes once per wakeup — explicit (issue / callback
    /// registration) or fallback tick — outside every engine lock. This is
    /// the periodic-work channel the STM runtime's contention governor
    /// rides: the hook polls reconfiguration tickets (stripe migrations,
    /// clock handoffs) so they settle in bounded time even when no
    /// transaction traffic would otherwise drive the engine. The hook must
    /// not block indefinitely (a blocked hook blocks period retirement,
    /// exactly as a blocked completion callback would); it *may* issue
    /// tickets and drive the engine.
    pub fn set_tick_hook(&self, f: impl Fn() + Send + Sync + 'static) {
        *self.tick_hook.lock().unwrap() = Some(Arc::new(f));
        // Wake the thread so the first invocation does not wait out a
        // backed-off idle tick.
        self.engine.notify_driver();
    }

    /// The engine this driver is attached to.
    pub fn engine(&self) -> &Arc<GraceEngine> {
        &self.engine
    }

    /// Fallback-tick wakeups that found nothing to do. With the adaptive
    /// idle tick this grows logarithmically-then-slowly during idle
    /// stretches (one wakeup per doubled interval, then one per
    /// [`Self::MAX_IDLE_TICK`]) instead of once per minimum tick.
    pub fn idle_wakeups(&self) -> u64 {
        self.idle_wakeups.load(Ordering::SeqCst)
    }

    /// Failed driving steps before the in-progress loop backs off from
    /// yielding to sleeping `tick` per re-check. Yields let the awaited
    /// threads run immediately (essential on a 1-core host, where a short
    /// transaction usually exits within a few yields); the sleep cap keeps
    /// a long-running straddling transaction from pinning the driver at
    /// 100% of a core — epoch exits send no notification, so the re-check
    /// must poll, but at tick granularity, not scheduler granularity.
    const YIELDS_BEFORE_SLEEP: u32 = 64;

    fn run(
        engine: &GraceEngine,
        stop: &AtomicBool,
        min_tick: Duration,
        idle_wakeups: &AtomicU64,
        tick_hook: &Mutex<Option<TickHook>>,
    ) {
        // The adaptive idle fallback: scaled by observed issue rate. While
        // work keeps arriving the tick sits at `min_tick` (snappy
        // fallback); every fallback wakeup that finds nothing doubles it,
        // up to MAX_IDLE_TICK — so an idle runtime's driver goes quiet
        // instead of spinning its minimum tick forever. Explicit wakeups
        // (issue / on_complete) go through the condvar and are never
        // delayed by the backoff.
        let mut idle_tick = min_tick;
        loop {
            // Run the tick hook once per wakeup, before draining: cloned
            // out of the mutex so a slow hook never blocks installation,
            // and outside every engine lock so it may issue tickets or
            // drive the engine itself.
            let hook = tick_hook.lock().unwrap().clone();
            if let Some(hook) = hook {
                hook();
            }
            // Retire everything outstanding. New issues during the inner
            // loop raise `issued`, and the outer re-check picks them up.
            while engine.has_pending() {
                idle_tick = min_tick; // observed work: reset the backoff
                let target = engine.issued();
                let mut steps = 0u32;
                while !engine.drive(target) {
                    if steps < Self::YIELDS_BEFORE_SLEEP {
                        steps += 1;
                        std::thread::yield_now();
                    } else {
                        // Tick granularity: the natural cadence for the
                        // stall detector — a scan that keeps the driver in
                        // this branch past the threshold is exactly a
                        // pinned-slot stall, and the driver is the one
                        // thread guaranteed to be watching.
                        engine.check_stalls();
                        std::thread::sleep(min_tick);
                    }
                }
            }
            if stop.load(Ordering::SeqCst) {
                // Drained and asked to stop: clean exit. (The drain above
                // ran first, so shutdown never strands a callback.)
                return;
            }
            let guard = engine.wake.lock().unwrap();
            // Re-check under the wake mutex: an issue that raced our drain
            // notifies under this same mutex, so either we see its ticket
            // here or its notify lands after we start waiting.
            if stop.load(Ordering::SeqCst) || engine.has_pending() {
                continue;
            }
            let (guard, timeout) = engine.wake_cv.wait_timeout(guard, idle_tick).unwrap();
            drop(guard);
            if timeout.timed_out() && !engine.has_pending() && !stop.load(Ordering::SeqCst) {
                // A fallback wakeup with nothing to do: count it and back
                // the tick off.
                idle_wakeups.fetch_add(1, Ordering::SeqCst);
                idle_tick = (idle_tick * 2).min(Self::MAX_IDLE_TICK);
            }
        }
    }

    /// Stop the driver: drain outstanding periods/callbacks, join the
    /// thread, detach from the engine. Idempotent; also run by drop.
    pub fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            self.engine.notify_driver();
            thread.join().expect("grace-period driver thread panicked");
            self.engine.driver_attached.store(false, Ordering::SeqCst);
        }
    }
}

impl Drop for GraceDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The paper's Boolean `active[NThreads]` table (Fig 7).
pub struct BoolTable {
    active: Box<[CachePadded<AtomicBool>]>,
}

impl BoolTable {
    /// A table with `nthreads` flags, all clear.
    pub fn new(nthreads: usize) -> Self {
        let active = (0..nthreads)
            .map(|_| CachePadded::new(AtomicBool::new(false)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BoolTable { active }
    }

    /// Number of thread slots in the table.
    pub fn nthreads(&self) -> usize {
        self.active.len()
    }

    /// Raise thread `t`'s active flag.
    #[inline]
    pub fn set(&self, t: usize) {
        self.active[t].store(true, Ordering::SeqCst);
    }

    /// Clear thread `t`'s active flag.
    #[inline]
    pub fn clear(&self, t: usize) {
        self.active[t].store(false, Ordering::SeqCst);
    }

    /// Is thread `t`'s flag currently set?
    #[inline]
    pub fn is_active(&self, t: usize) -> bool {
        self.active[t].load(Ordering::SeqCst)
    }

    /// Fig 7 fence: record which flags are set, then wait for each recorded
    /// flag to be observed clear at least once.
    pub fn wait_quiescent(&self, exclude: Option<usize>) {
        let r: Vec<bool> = self
            .active
            .iter()
            .map(|f| f.load(Ordering::SeqCst))
            .collect();
        for (t, &was_active) in r.iter().enumerate() {
            if Some(t) == exclude || !was_active {
                continue;
            }
            let mut spins = 0u32;
            while self.active[t].load(Ordering::SeqCst) {
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn completed_scans_feed_the_grace_histogram() {
        use tm_telemetry::{EventKind, TraceConfig};
        let eng = GraceEngine::new(2);
        let tel = Telemetry::new(2, TraceConfig::with_capacity(16));
        eng.set_telemetry(Arc::clone(&tel));
        eng.epochs().enter(0);
        let ticket = eng.issue();
        assert!(!ticket.poll(), "slot 0 still active");
        eng.epochs().exit(0);
        ticket.wait();
        let snap = tel.snapshot();
        assert_eq!(snap.hists.grace.count(), 1, "one scan, one sample");
        let scans: Vec<_> = snap
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::GraceScan { .. }))
            .collect();
        assert_eq!(scans.len(), 1);
        assert_eq!(scans[0].slot, tel.engine_slot());
        match scans[0].kind {
            EventKind::GraceScan { period, .. } => assert_eq!(period, 1),
            _ => unreachable!(),
        }
        // Without telemetry (or with it disabled) nothing is recorded and
        // the engine behaves identically.
        let bare = GraceEngine::new(1);
        bare.set_telemetry(Telemetry::new(1, TraceConfig::off()));
        bare.issue().wait();
        assert_eq!(bare.scans(), 1);
    }

    #[test]
    fn epoch_enter_exit_parity() {
        let t = EpochTable::new(2);
        assert!(!t.is_active(0));
        t.enter(0);
        assert!(t.is_active(0));
        assert!(!t.is_active(1));
        t.exit(0);
        assert!(!t.is_active(0));
        assert_eq!(t.epoch(0), 2);
        assert_eq!(t.nthreads(), 2);
    }

    #[test]
    fn wait_quiescent_no_active_returns_immediately() {
        let t = EpochTable::new(8);
        t.wait_quiescent(None); // must not block
    }

    #[test]
    fn wait_quiescent_excludes_self() {
        let t = EpochTable::new(2);
        t.enter(0);
        t.wait_quiescent(Some(0)); // must not deadlock on own slot
        t.exit(0);
    }

    /// A fence started during a critical section must not return until that
    /// section exits.
    #[test]
    fn grace_period_ordering() {
        let table = Arc::new(EpochTable::new(2));
        let stage = Arc::new(AtomicUsize::new(0));

        let t2 = {
            let table = Arc::clone(&table);
            let stage = Arc::clone(&stage);
            std::thread::spawn(move || {
                // Wait until thread 0's section is open.
                while stage.load(Ordering::SeqCst) < 1 {
                    std::hint::spin_loop();
                }
                table.wait_quiescent(Some(1));
                // The critical section must have advanced the stage to 2
                // before we get here.
                assert_eq!(stage.load(Ordering::SeqCst), 2);
            })
        };

        table.enter(0);
        stage.store(1, Ordering::SeqCst);
        // Hold the section open briefly so the fence snapshots it.
        std::thread::sleep(std::time::Duration::from_millis(30));
        stage.store(2, Ordering::SeqCst);
        table.exit(0);
        t2.join().unwrap();
    }

    /// The epoch fence does NOT wait for sections that start after its
    /// snapshot: run a continuous open/close loop in another thread and check
    /// the fence still returns.
    #[test]
    fn fence_terminates_under_continuous_traffic() {
        let table = Arc::new(EpochTable::new(2));
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    table.enter(0);
                    table.exit(0);
                }
            })
        };
        for _ in 0..100 {
            table.wait_quiescent(Some(1));
        }
        stop.store(true, Ordering::SeqCst);
        worker.join().unwrap();
    }

    #[test]
    fn filtered_wait_skips_slots() {
        let t = EpochTable::new(2);
        t.enter(0);
        // Filter says "don't wait for slot 0": returns despite activity.
        t.wait_quiescent_filtered(None, |s| s != 0);
        t.exit(0);
    }

    #[test]
    fn bool_table_basics() {
        let t = BoolTable::new(2);
        assert!(!t.is_active(0));
        t.set(0);
        assert!(t.is_active(0));
        t.wait_quiescent(Some(0));
        t.clear(0);
        t.wait_quiescent(None);
        assert_eq!(t.nthreads(), 2);
    }

    #[test]
    fn bool_table_grace_period() {
        let table = Arc::new(BoolTable::new(2));
        table.set(0);
        let done = Arc::new(AtomicBool::new(false));
        let fencer = {
            let table = Arc::clone(&table);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                table.wait_quiescent(Some(1));
                assert!(done.load(Ordering::SeqCst));
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        done.store(true, Ordering::SeqCst);
        table.clear(0);
        fencer.join().unwrap();
    }

    #[test]
    fn engine_quiescent_ticket_completes_in_one_scan() {
        let eng = GraceEngine::new(4);
        let t = eng.issue();
        assert_eq!(t.period(), 1);
        assert!(!eng.is_complete(1));
        t.wait();
        assert!(eng.is_complete(1));
        assert_eq!(eng.scans(), 1);
        assert_eq!(eng.completed(), 1);
        assert_eq!(eng.open_period(), 2);
    }

    /// The coalescing claim: every ticket issued while the same period is
    /// open resolves on ONE scan of the epoch table.
    #[test]
    fn engine_coalesces_tickets_behind_one_scan() {
        let eng = GraceEngine::new(8);
        let tickets: Vec<GraceTicket> = (0..16).map(|_| eng.issue()).collect();
        for t in &tickets {
            assert_eq!(t.period(), 1, "all issued in the same open period");
        }
        for t in &tickets {
            t.wait();
        }
        assert_eq!(eng.scans(), 1, "16 tickets must share one scan");
    }

    /// A ticket must not resolve while a section active at issue is open.
    #[test]
    fn engine_ticket_waits_for_active_section() {
        let eng = GraceEngine::new(2);
        let stage = Arc::new(AtomicUsize::new(0));
        eng.epochs().enter(0);
        let ticket = eng.issue();
        assert!(!ticket.poll(), "section 0 still active");
        let waiter = {
            let ticket = ticket.clone();
            let stage = Arc::clone(&stage);
            std::thread::spawn(move || {
                ticket.wait();
                assert_eq!(stage.load(Ordering::SeqCst), 1);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        stage.store(1, Ordering::SeqCst);
        eng.epochs().exit(0);
        waiter.join().unwrap();
    }

    /// Sections starting after issue are not waited for: the engine must
    /// complete tickets under continuous enter/exit traffic (regression for
    /// the fence-under-traffic liveness the runtime depends on).
    #[test]
    fn engine_completes_under_continuous_traffic() {
        let eng = GraceEngine::new(2);
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let eng = Arc::clone(&eng);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    eng.epochs().enter(0);
                    eng.epochs().exit(0);
                }
            })
        };
        for _ in 0..100 {
            eng.issue().wait();
        }
        stop.store(true, Ordering::SeqCst);
        worker.join().unwrap();
    }

    #[test]
    fn engine_on_complete_fires() {
        let eng = GraceEngine::new(2);
        let fired = Arc::new(AtomicUsize::new(0));

        // Pending period: callback runs when a driver completes it.
        let t1 = eng.issue();
        {
            let fired = Arc::clone(&fired);
            t1.clone().on_complete(move || {
                fired.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(fired.load(Ordering::SeqCst), 0, "not complete yet");
        t1.wait();
        assert_eq!(fired.load(Ordering::SeqCst), 1, "ran on completion");

        // Already-complete period: callback runs immediately.
        {
            let fired = Arc::clone(&fired);
            t1.on_complete(move || {
                fired.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    /// Tickets issued after a scan closed their predecessor period land in
    /// the next period and need a second scan.
    #[test]
    fn engine_periods_advance_monotonically() {
        let eng = GraceEngine::new(2);
        let t1 = eng.issue();
        t1.wait();
        let t2 = eng.issue();
        assert_eq!(t2.period(), 2);
        assert!(!eng.is_complete(2));
        t2.wait();
        assert_eq!(eng.scans(), 2);
        assert!(eng.is_complete(2));
    }

    /// Concurrent waiters from many threads on the same period: exactly one
    /// scan, nobody hangs, everyone observes completion.
    #[test]
    fn engine_concurrent_waiters_share_scan() {
        let eng = GraceEngine::new(4);
        eng.epochs().enter(3);
        let tickets: Vec<GraceTicket> = (0..3).map(|_| eng.issue()).collect();
        std::thread::scope(|s| {
            for t in &tickets {
                s.spawn(move || t.wait());
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
            eng.epochs().exit(3);
        });
        assert_eq!(eng.scans(), 1, "waiters must share the period's scan");
    }

    /// Sleep-wait (NOT poll — polling would drive the engine and defeat
    /// the zero-poller liveness regressions) until `cond`, with a generous
    /// bound so a broken driver fails fast instead of hanging CI.
    fn sleep_until(what: &str, cond: impl Fn() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while !cond() {
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for {what}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// THE liveness regression: a fire-and-forget callback with zero
    /// pollers/waiters must fire within bounded time under a driver.
    /// (Without one it would never fire — nobody drives the engine.)
    #[test]
    fn driver_fires_callback_with_zero_pollers() {
        let eng = GraceEngine::new(2);
        let _driver = GraceDriver::spawn(Arc::clone(&eng), GraceDriver::DEFAULT_TICK);
        let fired = Arc::new(AtomicBool::new(false));
        {
            let fired = Arc::clone(&fired);
            eng.issue().on_complete(move || {
                fired.store(true, Ordering::SeqCst);
            });
        }
        // No poll, no wait, no other traffic: only the driver can do this.
        sleep_until("fire-and-forget callback", || fired.load(Ordering::SeqCst));
        assert!(eng.is_complete(1));
    }

    /// The driver must NOT retire a period early: a critical section active
    /// at issue pins the period until it exits.
    #[test]
    fn driver_waits_for_active_section() {
        let eng = GraceEngine::new(2);
        let _driver = GraceDriver::spawn(Arc::clone(&eng), GraceDriver::DEFAULT_TICK);
        eng.epochs().enter(0);
        let fired = Arc::new(AtomicBool::new(false));
        let ticket = eng.issue();
        {
            let fired = Arc::clone(&fired);
            ticket.clone().on_complete(move || {
                fired.store(true, Ordering::SeqCst);
            });
        }
        // Give the driver ample time to (wrongly) retire the period.
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !fired.load(Ordering::SeqCst),
            "retired under an active section"
        );
        assert!(!eng.is_complete(ticket.period()));
        eng.epochs().exit(0);
        sleep_until("callback after exit", || fired.load(Ordering::SeqCst));
    }

    /// Coalescing survives the driver, deterministically: pin a section so
    /// the driver's first scan cannot finish — the *next* period then stays
    /// open however long we take to issue into it — and check all tickets
    /// issued meanwhile retire on one scan.
    #[test]
    fn driver_preserves_coalescing() {
        let eng = GraceEngine::new(2);
        let _driver = GraceDriver::spawn(Arc::clone(&eng), GraceDriver::DEFAULT_TICK);
        eng.epochs().enter(0);
        let sacrificial = eng.issue();
        assert_eq!(sacrificial.period(), 1);
        // The driver wakes, closes period 1 and starts its scan, which
        // pends on slot 0. Period 2 cannot close until that scan finishes.
        sleep_until("driver to open period 2", || eng.open_period() == 2);
        let tickets: Vec<GraceTicket> = (0..8).map(|_| eng.issue()).collect();
        for t in &tickets {
            assert_eq!(t.period(), 2, "period 2 is pinned open");
        }
        assert_eq!(eng.scans(), 0, "scan 1 still in progress");
        eng.epochs().exit(0);
        sleep_until("driver to retire period 2", || eng.is_complete(2));
        assert_eq!(eng.scans(), 2, "8 tickets coalesced behind one scan");
    }

    /// Dropping the driver drains: outstanding callbacks run before drop
    /// returns, so shutdown never loses a requested grace period.
    #[test]
    fn driver_shutdown_drains_callbacks() {
        let eng = GraceEngine::new(2);
        let driver = GraceDriver::spawn(Arc::clone(&eng), GraceDriver::DEFAULT_TICK);
        let fired = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let fired = Arc::clone(&fired);
            eng.issue().on_complete(move || {
                fired.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(driver); // immediately — the drain must still run them
        assert_eq!(fired.load(Ordering::SeqCst), 3, "drop must drain");
        assert!(!eng.has_pending());
        // The engine keeps working thread-free after detach.
        let t = eng.issue();
        t.wait();
        assert!(t.poll());
    }

    /// The single-driver invariant is checked, and detach (shutdown)
    /// re-arms the engine for a fresh driver.
    #[test]
    fn second_driver_attach_is_rejected_until_detach() {
        let eng = GraceEngine::new(2);
        let mut first = GraceDriver::spawn(Arc::clone(&eng), GraceDriver::DEFAULT_TICK);
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            GraceDriver::spawn(Arc::clone(&eng), GraceDriver::DEFAULT_TICK)
        }));
        assert!(second.is_err(), "double attach must be rejected");
        first.shutdown();
        // After a clean detach a new driver may attach and still works.
        let _third = GraceDriver::spawn(Arc::clone(&eng), GraceDriver::DEFAULT_TICK);
        let fired = Arc::new(AtomicBool::new(false));
        {
            let fired = Arc::clone(&fired);
            eng.issue().on_complete(move || {
                fired.store(true, Ordering::SeqCst);
            });
        }
        sleep_until("callback under the re-attached driver", || {
            fired.load(Ordering::SeqCst)
        });
    }

    /// The adaptive idle tick (ROADMAP driver follow-up): an idle driver's
    /// wake count must drop well below the fixed-minimum-tick rate — the
    /// backoff doubles the fallback interval up to `MAX_IDLE_TICK` — while
    /// explicit wakeups stay immediate (a later fire-and-forget ticket
    /// still retires in bounded time).
    #[test]
    fn idle_driver_wake_count_drops() {
        let eng = GraceEngine::new(2);
        let driver = GraceDriver::spawn(Arc::clone(&eng), GraceDriver::DEFAULT_TICK);
        // One real work cycle so the driver has been through its busy path
        // (which resets the backoff) before the idle stretch.
        let fired = Arc::new(AtomicBool::new(false));
        {
            let fired = Arc::clone(&fired);
            eng.issue().on_complete(move || {
                fired.store(true, Ordering::SeqCst);
            });
        }
        sleep_until("initial callback", || fired.load(Ordering::SeqCst));

        // Wait until the driver provably entered idle ticking (robust to
        // scheduler starvation on a loaded 1-core host), then measure a
        // fixed window against the wall time it actually spanned.
        sleep_until("first idle wakeup", || driver.idle_wakeups() >= 1);
        let before = driver.idle_wakeups();
        let started = std::time::Instant::now();
        std::thread::sleep(Duration::from_millis(300));
        let idle = driver.idle_wakeups() - before;
        let elapsed = started.elapsed();
        // A fixed DEFAULT_TICK driver would take ~one wakeup per tick over
        // the window (~300 here). The doubling backoff takes at most
        // ~log2(MAX/MIN) + elapsed/MAX_IDLE_TICK ≈ 12. Assert a 4x margin
        // under the fixed rate so scheduler noise can't flake the bound.
        let fixed_rate = (elapsed.as_millis() / GraceDriver::DEFAULT_TICK.as_millis()) as u64;
        assert!(
            idle < fixed_rate / 4,
            "adaptive idle tick must cut wakeups well below the fixed-tick \
             rate: {idle} vs ~{fixed_rate} over {elapsed:?}"
        );

        // Back-off must not cost responsiveness: an explicit issue wakes
        // the driver through the condvar immediately.
        let fired = Arc::new(AtomicBool::new(false));
        let issued_at = std::time::Instant::now();
        {
            let fired = Arc::clone(&fired);
            eng.issue().on_complete(move || {
                fired.store(true, Ordering::SeqCst);
            });
        }
        sleep_until("post-idle callback", || fired.load(Ordering::SeqCst));
        assert!(
            issued_at.elapsed() < Duration::from_secs(5),
            "a backed-off driver must still wake on issue"
        );
    }

    /// The tick hook runs on every driver wakeup — including pure fallback
    /// ticks with no engine work — and may itself drive the engine: the
    /// periodic channel the STM contention governor uses to settle
    /// reconfigurations in bounded time without transaction traffic.
    #[test]
    fn driver_tick_hook_fires_while_idle_and_may_drive() {
        let eng = GraceEngine::new(2);
        let driver = GraceDriver::spawn(Arc::clone(&eng), GraceDriver::DEFAULT_TICK);
        let ticks = Arc::new(AtomicUsize::new(0));
        {
            let ticks = Arc::clone(&ticks);
            let eng = Arc::clone(&eng);
            driver.set_tick_hook(move || {
                ticks.fetch_add(1, Ordering::SeqCst);
                // Hooks may drive: poll whatever has been issued so far.
                eng.drive(eng.issued());
            });
        }
        // No issues, no pollers: only fallback ticks can run the hook.
        sleep_until("three idle tick-hook firings", || {
            ticks.load(Ordering::SeqCst) >= 3
        });
        // A fire-and-forget ticket still retires (the hook coexists with
        // the drain loop) and its wakeup also ticks the hook.
        let fired = Arc::new(AtomicBool::new(false));
        {
            let fired = Arc::clone(&fired);
            eng.issue().on_complete(move || {
                fired.store(true, Ordering::SeqCst);
            });
        }
        sleep_until("callback under a hooked driver", || {
            fired.load(Ordering::SeqCst)
        });
    }

    /// `has_pending`/`issued` track the ticket lifecycle.
    #[test]
    fn pending_view_tracks_tickets() {
        let eng = GraceEngine::new(2);
        assert!(!eng.has_pending());
        assert_eq!(eng.issued(), 0);
        let t = eng.issue();
        assert!(eng.has_pending());
        assert_eq!(eng.issued(), 1);
        t.wait();
        assert!(!eng.has_pending());
    }

    /// Driver + cooperative waiters at once: both may drive, nobody hangs,
    /// under continuous enter/exit traffic.
    #[test]
    fn driver_and_waiters_coexist_under_traffic() {
        let eng = GraceEngine::new(2);
        let _driver = GraceDriver::spawn(Arc::clone(&eng), GraceDriver::DEFAULT_TICK);
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let eng = Arc::clone(&eng);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    eng.epochs().enter(0);
                    eng.epochs().exit(0);
                }
            })
        };
        for _ in 0..50 {
            eng.issue().wait();
        }
        stop.store(true, Ordering::SeqCst);
        worker.join().unwrap();
    }

    /// A drop-counting payload: every drop bumps the shared counter, so
    /// leaks (count short) and double drops (count high / UB caught by
    /// miri-style reasoning) are both visible.
    struct CountedDrop(Arc<AtomicUsize>);
    impl Drop for CountedDrop {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// EBR core contract: a retirement is pinned by every critical section
    /// active at `defer_drop` and dropped exactly once after they exit.
    #[test]
    fn defer_drop_waits_for_grace_then_drops_once() {
        let eng = GraceEngine::new(2);
        let drops = Arc::new(AtomicUsize::new(0));
        eng.epochs().enter(0);
        eng.defer_drop(Box::new(CountedDrop(Arc::clone(&drops))));
        assert_eq!(eng.retired_pending(), 1);
        assert!(eng.has_pending(), "retirement counts as pending work");
        let t = eng.issue();
        assert!(!t.poll(), "slot 0 still active");
        assert_eq!(drops.load(Ordering::SeqCst), 0, "pinned by the section");
        eng.epochs().exit(0);
        t.wait();
        assert_eq!(drops.load(Ordering::SeqCst), 1, "dropped exactly once");
        assert_eq!(eng.retired_boxes(), 1);
        assert_eq!(eng.collected_boxes(), 1);
        assert!(eng.collect_passes() >= 1);
        assert_eq!(eng.retired_pending(), 0);
    }

    /// Retirements batch behind one scan exactly like tickets do.
    #[test]
    fn retirements_coalesce_behind_one_collection_pass() {
        let eng = GraceEngine::new(2);
        let drops = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            eng.defer_drop(Box::new(CountedDrop(Arc::clone(&drops))));
        }
        eng.issue().wait();
        assert_eq!(drops.load(Ordering::SeqCst), 16);
        assert_eq!(eng.collect_passes(), 1, "16 boxes, one pass");
    }

    /// The zero-poller liveness extends to reclamation: with a driver
    /// attached, `defer_drop` alone (no tickets, no pollers) is collected
    /// within bounded time.
    #[test]
    fn driver_collects_retirements_with_zero_pollers() {
        let eng = GraceEngine::new(2);
        let _driver = GraceDriver::spawn(Arc::clone(&eng), GraceDriver::DEFAULT_TICK);
        let drops = Arc::new(AtomicUsize::new(0));
        eng.defer_drop(Box::new(CountedDrop(Arc::clone(&drops))));
        sleep_until("driver to collect the retirement", || {
            drops.load(Ordering::SeqCst) == 1
        });
        assert_eq!(eng.collected_boxes(), 1);
    }

    /// Whatever is still retired when the engine drops is freed then —
    /// exactly once, never leaked.
    #[test]
    fn engine_drop_frees_uncollected_retirements() {
        let eng = GraceEngine::new(2);
        let drops = Arc::new(AtomicUsize::new(0));
        eng.defer_drop(Box::new(CountedDrop(Arc::clone(&drops))));
        eng.defer_drop(Box::new(CountedDrop(Arc::clone(&drops))));
        assert_eq!(drops.load(Ordering::SeqCst), 0, "nobody drove a scan");
        drop(eng);
        assert_eq!(drops.load(Ordering::SeqCst), 2, "freed with the engine");
    }

    /// Many threads hammering enter/exit while a fencer loops: smoke test
    /// for loss of signals / hangs.
    #[test]
    fn stress_many_threads() {
        let n = 8;
        let table = Arc::new(EpochTable::new(n));
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        for t in 0..n - 1 {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                let mut count = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    table.enter(t);
                    count = count.wrapping_add(1);
                    std::hint::black_box(count);
                    table.exit(t);
                }
            }));
        }
        for _ in 0..200 {
            table.wait_quiescent(Some(n - 1));
        }
        stop.store(true, Ordering::SeqCst);
        for w in workers {
            w.join().unwrap();
        }
    }
}
