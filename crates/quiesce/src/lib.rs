//! # tm-quiesce — RCU-style quiescence for transactional fences
//!
//! A transactional fence (paper Sec 1, Fig 7 lines 33–39) blocks until every
//! transaction that was active when the fence was invoked has completed. This
//! is exactly an RCU grace period: transactions are read-side critical
//! sections, the fence is `synchronize_rcu`.
//!
//! Two implementations are provided:
//!
//! * [`EpochTable`] — per-thread *epoch counters* (even = quiescent, odd =
//!   active). A fence snapshots the counters and waits until every
//!   odd-snapshot counter has moved. Precise: a thread that retires one
//!   transaction and immediately starts another does not re-capture the
//!   fence, so fences terminate even under continuous transaction traffic.
//! * [`BoolTable`] — the paper's Fig 7 Boolean `active[t]` flags, kept for
//!   fidelity (and used by the executable TL2 specification in `tm-lang`).
//!   Under continuous traffic a fence may over-wait, because a freshly
//!   started transaction makes `active[t]` true again before the fence
//!   re-reads it; it still satisfies Def 2.1's fence clause.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Per-thread epoch counters. Even values mean the slot is quiescent, odd
/// values mean a critical section (transaction) is in progress.
pub struct EpochTable {
    epochs: Box<[CachePadded<AtomicU64>]>,
}

impl EpochTable {
    /// Create a table with `nthreads` slots, all quiescent.
    pub fn new(nthreads: usize) -> Self {
        let epochs = (0..nthreads)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EpochTable { epochs }
    }

    pub fn nthreads(&self) -> usize {
        self.epochs.len()
    }

    /// Mark slot `t` active. Must currently be quiescent.
    #[inline]
    pub fn enter(&self, t: usize) {
        let e = self.epochs[t].fetch_add(1, Ordering::SeqCst);
        debug_assert!(e.is_multiple_of(2), "enter() on an already-active slot");
    }

    /// Mark slot `t` quiescent. Must currently be active.
    #[inline]
    pub fn exit(&self, t: usize) {
        let e = self.epochs[t].fetch_add(1, Ordering::SeqCst);
        debug_assert!(e % 2 == 1, "exit() on a quiescent slot");
    }

    /// Is slot `t` currently active?
    #[inline]
    pub fn is_active(&self, t: usize) -> bool {
        self.epochs[t].load(Ordering::SeqCst) % 2 == 1
    }

    /// Current epoch of slot `t`.
    #[inline]
    pub fn epoch(&self, t: usize) -> u64 {
        self.epochs[t].load(Ordering::SeqCst)
    }

    /// Block until every critical section active at the time of the call has
    /// completed (an RCU grace period). `exclude` skips the caller's own
    /// slot, which would otherwise deadlock if called between `enter`/`exit`.
    pub fn wait_quiescent(&self, exclude: Option<usize>) {
        self.wait_quiescent_filtered(exclude, |_| true);
    }

    /// Like [`Self::wait_quiescent`], but only waits for slots accepted by
    /// `wait_for`. Used to model *buggy* fence placements (e.g. skipping
    /// read-only transactions, the GCC libitm bug class reproduced in E14).
    pub fn wait_quiescent_filtered(
        &self,
        exclude: Option<usize>,
        wait_for: impl Fn(usize) -> bool,
    ) {
        // Phase 1 (Fig 7 lines 35–36): snapshot.
        let snap: Vec<u64> = self
            .epochs
            .iter()
            .map(|e| e.load(Ordering::SeqCst))
            .collect();
        // Phase 2 (lines 37–39): wait for every active snapshot to move.
        for (t, &s) in snap.iter().enumerate() {
            if Some(t) == exclude || s % 2 == 0 || !wait_for(t) {
                continue;
            }
            let mut spins = 0u32;
            while self.epochs[t].load(Ordering::SeqCst) == s {
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// The paper's Boolean `active[NThreads]` table (Fig 7).
pub struct BoolTable {
    active: Box<[CachePadded<AtomicBool>]>,
}

impl BoolTable {
    pub fn new(nthreads: usize) -> Self {
        let active = (0..nthreads)
            .map(|_| CachePadded::new(AtomicBool::new(false)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BoolTable { active }
    }

    pub fn nthreads(&self) -> usize {
        self.active.len()
    }

    #[inline]
    pub fn set(&self, t: usize) {
        self.active[t].store(true, Ordering::SeqCst);
    }

    #[inline]
    pub fn clear(&self, t: usize) {
        self.active[t].store(false, Ordering::SeqCst);
    }

    #[inline]
    pub fn is_active(&self, t: usize) -> bool {
        self.active[t].load(Ordering::SeqCst)
    }

    /// Fig 7 fence: record which flags are set, then wait for each recorded
    /// flag to be observed clear at least once.
    pub fn wait_quiescent(&self, exclude: Option<usize>) {
        let r: Vec<bool> = self
            .active
            .iter()
            .map(|f| f.load(Ordering::SeqCst))
            .collect();
        for (t, &was_active) in r.iter().enumerate() {
            if Some(t) == exclude || !was_active {
                continue;
            }
            let mut spins = 0u32;
            while self.active[t].load(Ordering::SeqCst) {
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn epoch_enter_exit_parity() {
        let t = EpochTable::new(2);
        assert!(!t.is_active(0));
        t.enter(0);
        assert!(t.is_active(0));
        assert!(!t.is_active(1));
        t.exit(0);
        assert!(!t.is_active(0));
        assert_eq!(t.epoch(0), 2);
        assert_eq!(t.nthreads(), 2);
    }

    #[test]
    fn wait_quiescent_no_active_returns_immediately() {
        let t = EpochTable::new(8);
        t.wait_quiescent(None); // must not block
    }

    #[test]
    fn wait_quiescent_excludes_self() {
        let t = EpochTable::new(2);
        t.enter(0);
        t.wait_quiescent(Some(0)); // must not deadlock on own slot
        t.exit(0);
    }

    /// A fence started during a critical section must not return until that
    /// section exits.
    #[test]
    fn grace_period_ordering() {
        let table = Arc::new(EpochTable::new(2));
        let stage = Arc::new(AtomicUsize::new(0));

        let t2 = {
            let table = Arc::clone(&table);
            let stage = Arc::clone(&stage);
            std::thread::spawn(move || {
                // Wait until thread 0's section is open.
                while stage.load(Ordering::SeqCst) < 1 {
                    std::hint::spin_loop();
                }
                table.wait_quiescent(Some(1));
                // The critical section must have advanced the stage to 2
                // before we get here.
                assert_eq!(stage.load(Ordering::SeqCst), 2);
            })
        };

        table.enter(0);
        stage.store(1, Ordering::SeqCst);
        // Hold the section open briefly so the fence snapshots it.
        std::thread::sleep(std::time::Duration::from_millis(30));
        stage.store(2, Ordering::SeqCst);
        table.exit(0);
        t2.join().unwrap();
    }

    /// The epoch fence does NOT wait for sections that start after its
    /// snapshot: run a continuous open/close loop in another thread and check
    /// the fence still returns.
    #[test]
    fn fence_terminates_under_continuous_traffic() {
        let table = Arc::new(EpochTable::new(2));
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    table.enter(0);
                    table.exit(0);
                }
            })
        };
        for _ in 0..100 {
            table.wait_quiescent(Some(1));
        }
        stop.store(true, Ordering::SeqCst);
        worker.join().unwrap();
    }

    #[test]
    fn filtered_wait_skips_slots() {
        let t = EpochTable::new(2);
        t.enter(0);
        // Filter says "don't wait for slot 0": returns despite activity.
        t.wait_quiescent_filtered(None, |s| s != 0);
        t.exit(0);
    }

    #[test]
    fn bool_table_basics() {
        let t = BoolTable::new(2);
        assert!(!t.is_active(0));
        t.set(0);
        assert!(t.is_active(0));
        t.wait_quiescent(Some(0));
        t.clear(0);
        t.wait_quiescent(None);
        assert_eq!(t.nthreads(), 2);
    }

    #[test]
    fn bool_table_grace_period() {
        let table = Arc::new(BoolTable::new(2));
        table.set(0);
        let done = Arc::new(AtomicBool::new(false));
        let fencer = {
            let table = Arc::clone(&table);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                table.wait_quiescent(Some(1));
                assert!(done.load(Ordering::SeqCst));
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        done.store(true, Ordering::SeqCst);
        table.clear(0);
        fencer.join().unwrap();
    }

    /// Many threads hammering enter/exit while a fencer loops: smoke test
    /// for loss of signals / hangs.
    #[test]
    fn stress_many_threads() {
        let n = 8;
        let table = Arc::new(EpochTable::new(n));
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        for t in 0..n - 1 {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                let mut count = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    table.enter(t);
                    count = count.wrapping_add(1);
                    std::hint::black_box(count);
                    table.exit(t);
                }
            }));
        }
        for _ in 0..200 {
            table.wait_quiescent(Some(n - 1));
        }
        stop.store(true, Ordering::SeqCst);
        for w in workers {
            w.join().unwrap();
        }
    }
}
