//! Shared workload generators and measurement helpers for the benchmark
//! harness (experiments E15–E17 in DESIGN.md).
//!
//! The workloads are STAMP-shaped synthetics: parameterized transaction
//! length, write share, register count (contention), thread count, and
//! fence policy — the knobs that drive the fence-overhead results of Yoo et
//! al. cited in the paper's Sec 1.
//!
//! Every instance constructed here is `chaos_off()`: benchmarks are
//! measurements, and letting a `TM_STM_CHAOS` seed (the fault-injection CI
//! pass) perturb them would silently corrupt reported numbers and break
//! the exact-counter pins in this crate's unit tests.

use std::collections::VecDeque;
use std::time::Instant;
use tm_stm::prelude::*;
use tm_stm::telemetry::OpClass;
use tm_stm::tl2::Tl2Kind;
use tm_stm::tvar::TypedStm;

/// Deterministic splitmix-style RNG step.
#[inline]
pub fn lcg(s: u64) -> u64 {
    s.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// Which STM implementation (and storage backend) to drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StmKind {
    /// TL2 with per-register ownership records (GV1 clock).
    Tl2,
    /// TL2 over a striped orec table.
    Tl2Striped {
        stripes: usize,
    },
    /// TL2 over the contention-aware adaptive striped table.
    Tl2Adaptive {
        policy: AdaptivePolicy,
    },
    /// TL2 (per-register orecs) under an alternative version clock.
    Tl2Clock {
        clock: ClockKind,
    },
    Norec,
    Glock,
}

impl StmKind {
    /// The classic algorithm trio (per-register TL2 storage); striped and
    /// clock variants are enumerated explicitly by the storage and clock
    /// benchmarks.
    pub const ALL: [StmKind; 3] = [StmKind::Tl2, StmKind::Norec, StmKind::Glock];

    /// TL2 under every version clock (`tl2` is the GV1 baseline).
    pub const TL2_CLOCKS: [StmKind; 3] = [
        StmKind::Tl2,
        StmKind::Tl2Clock {
            clock: ClockKind::Gv4,
        },
        StmKind::Tl2Clock {
            clock: ClockKind::Gv5,
        },
    ];

    pub fn label(self) -> String {
        match self {
            StmKind::Tl2 => "tl2".into(),
            StmKind::Tl2Striped { stripes } => format!("tl2-striped{stripes}"),
            StmKind::Tl2Adaptive { policy } => {
                format!("tl2-adaptive{}-{}", policy.start, policy.max)
            }
            StmKind::Tl2Clock { clock } => format!("tl2-{}", clock.label()),
            StmKind::Norec => "norec".into(),
            StmKind::Glock => "glock".into(),
        }
    }
}

/// Fence policy for the overhead experiments (E15).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FencePolicy {
    /// No fences at all (unsafe for privatizing programs; the lower bound).
    None,
    /// Fences only where the privatization discipline needs them.
    Selective,
    /// A fence after every transaction (the conservative placement whose
    /// cost Yoo et al. measured at 32% avg / 107% worst case).
    AfterEvery,
}

impl FencePolicy {
    pub const ALL: [FencePolicy; 3] = [
        FencePolicy::None,
        FencePolicy::Selective,
        FencePolicy::AfterEvery,
    ];

    pub fn label(self) -> &'static str {
        match self {
            FencePolicy::None => "no-fence",
            FencePolicy::Selective => "selective",
            FencePolicy::AfterEvery => "fence-all",
        }
    }
}

/// A transactional mix workload with periodic privatization episodes.
///
/// Register 0 is the privatization flag; registers `1..=priv_regs` form the
/// privatizable region; the rest are ordinary shared registers.
#[derive(Clone, Copy, Debug)]
pub struct MixCfg {
    pub nregs: usize,
    /// Reads+writes per transaction.
    pub txn_len: usize,
    /// Percentage of operations that are writes.
    pub write_pct: u32,
    /// Transactions per thread.
    pub txns_per_thread: u64,
    /// Every k transactions, run a privatize → direct work → publish episode
    /// (0 = never). Selective fencing fences exactly here.
    pub privatize_every: u64,
    /// Direct operations per private phase.
    pub direct_ops: usize,
}

/// Named workload shapes used across E15 reports and benches.
pub fn standard_workloads() -> Vec<(&'static str, MixCfg)> {
    vec![
        (
            "short-readmostly",
            MixCfg {
                nregs: 1024,
                txn_len: 4,
                write_pct: 10,
                txns_per_thread: 20_000,
                privatize_every: 64,
                direct_ops: 8,
            },
        ),
        (
            "short-writeheavy",
            MixCfg {
                nregs: 1024,
                txn_len: 4,
                write_pct: 80,
                txns_per_thread: 20_000,
                privatize_every: 64,
                direct_ops: 8,
            },
        ),
        (
            "long-readmostly",
            MixCfg {
                nregs: 4096,
                txn_len: 32,
                write_pct: 10,
                txns_per_thread: 5_000,
                privatize_every: 64,
                direct_ops: 16,
            },
        ),
        (
            "long-writeheavy",
            MixCfg {
                nregs: 4096,
                txn_len: 32,
                write_pct: 50,
                txns_per_thread: 5_000,
                privatize_every: 64,
                direct_ops: 16,
            },
        ),
        (
            "contended",
            MixCfg {
                nregs: 32,
                txn_len: 8,
                write_pct: 50,
                txns_per_thread: 10_000,
                privatize_every: 32,
                direct_ops: 4,
            },
        ),
    ]
}

/// Run the mix on one handle. `scratch` is a register private to this
/// thread, used as the privatized object (flag and data in one), so the
/// fenced workload is DRF: transactions of other threads never touch it.
/// Values are kept nonzero; op sequences are derived deterministically from
/// the per-transaction seed so retries replay the same accesses.
pub fn mix_worker<H: StmHandle>(
    h: &mut H,
    cfg: &MixCfg,
    scratch: usize,
    seed: u64,
    policy: FencePolicy,
) {
    let mut s = seed | 1;
    let mut ops: Vec<(usize, Option<u64>)> = Vec::with_capacity(cfg.txn_len);
    for i in 0..cfg.txns_per_thread {
        ops.clear();
        for _ in 0..cfg.txn_len {
            s = lcg(s);
            let x = (s >> 33) as usize % cfg.nregs;
            let is_write = (s >> 8) % 100 < u64::from(cfg.write_pct);
            ops.push((x, is_write.then_some(s | 1)));
        }
        let ops_ref = &ops;
        h.atomic(|tx| {
            let mut acc = 0u64;
            for &(x, w) in ops_ref {
                match w {
                    Some(v) => tx.write(x, v)?,
                    None => acc = acc.wrapping_add(tx.read(x)?),
                }
            }
            Ok(acc)
        });
        if policy == FencePolicy::AfterEvery {
            h.fence();
        }
        // Privatization episode: selective fencing pays exactly here.
        if cfg.privatize_every != 0 && (i + 1) % cfg.privatize_every == 0 {
            h.atomic(|tx| tx.write(scratch, 1));
            if policy != FencePolicy::None {
                h.fence();
            }
            for _ in 0..cfg.direct_ops {
                s = lcg(s);
                h.write_direct(scratch, s | 1);
                let _ = h.read_direct(scratch);
            }
            h.atomic(|tx| tx.write(scratch, 2));
            if policy == FencePolicy::AfterEvery {
                h.fence();
            }
        }
    }
}

/// Measure mix throughput (transactions/second) across `threads` threads.
/// `threads` extra registers serve as per-thread privatized objects.
pub fn mix_throughput(kind: StmKind, threads: usize, cfg: &MixCfg, policy: FencePolicy) -> f64 {
    let total_regs = cfg.nregs + threads;
    macro_rules! run {
        ($stm:expr) => {{
            let stm = $stm;
            std::thread::scope(|sc| {
                for t in 0..threads {
                    let stm = stm.clone();
                    let cfg = *cfg;
                    sc.spawn(move || {
                        let mut h = stm.handle(t);
                        let scratch = cfg.nregs + t;
                        mix_worker(&mut h, &cfg, scratch, (t as u64 + 1) * 0x9E37_79B9, policy);
                    });
                }
            });
        }};
    }
    let start = Instant::now();
    match kind {
        StmKind::Tl2 => run!(Tl2Stm::with_config(
            StmConfig::new(total_regs, threads).chaos_off()
        )),
        StmKind::Tl2Striped { stripes } => {
            run!(Tl2Stm::with_config(
                StmConfig::new(total_regs, threads)
                    .striped(stripes)
                    .chaos_off()
            ))
        }
        StmKind::Tl2Adaptive { policy } => {
            run!(Tl2Stm::with_config(
                StmConfig::new(total_regs, threads)
                    .adaptive_stripes(policy)
                    .chaos_off()
            ))
        }
        StmKind::Tl2Clock { clock } => {
            run!(Tl2Stm::with_config(
                StmConfig::new(total_regs, threads).clock(clock).chaos_off()
            ))
        }
        StmKind::Norec => run!(NorecStm::with_config(
            StmConfig::new(total_regs, threads).chaos_off()
        )),
        StmKind::Glock => run!(GlockStm::with_config(
            StmConfig::new(total_regs, threads).chaos_off()
        )),
    }
    let total = (threads as u64 * cfg.txns_per_thread) as f64;
    total / start.elapsed().as_secs_f64()
}

/// A deliberately contended workload for the backoff experiments: `threads`
/// threads each increment one shared register `incs_per_thread` times on a
/// TL2 instance with the given backoff tuning. Returns (commits/sec, merged
/// per-handle [`Stats`] — whose `retries`/`backoff_ns` are the measurement).
pub fn contended_counter(
    threads: usize,
    incs_per_thread: u64,
    backoff: BackoffCfg,
) -> (f64, Stats) {
    let stm = Tl2Stm::with_config(StmConfig::new(1, threads).backoff(backoff).chaos_off());
    let start = Instant::now();
    let stats = std::thread::scope(|sc| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let stm = stm.clone();
                sc.spawn(move || {
                    let mut h = stm.handle(t);
                    for _ in 0..incs_per_thread {
                        h.atomic(|tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        });
                    }
                    h.stats()
                })
            })
            .collect();
        let mut total = Stats::default();
        for w in workers {
            total.merge(&w.join().unwrap());
        }
        total
    });
    let tput = (threads as u64 * incs_per_thread) as f64 / start.elapsed().as_secs_f64();
    (tput, stats)
}

/// A privatization-phase workload (E16): one owner cycles
/// privatize → (fence?) → direct work → publish, while workers run guarded
/// transactions on the shared region.
#[derive(Clone, Copy, Debug)]
pub struct PrivCfg {
    pub data_regs: usize,
    /// Direct (non-transactional) operations per private phase.
    pub direct_ops: usize,
    pub rounds: u64,
    /// Guarded transactions per worker per round (approximate pacing).
    pub worker_txns: u64,
}

/// Run the privatization workload and return (owner rounds/sec, lost
/// updates). `use_fence=false` is only safe for NOrec/Glock.
pub fn privatization_throughput(
    kind: StmKind,
    workers: usize,
    cfg: &PrivCfg,
    use_fence: bool,
) -> (f64, u64) {
    const FLAG: usize = 0;
    let nregs = 1 + cfg.data_regs;
    let threads = workers + 1;
    let start = Instant::now();

    macro_rules! run {
        ($stm:expr) => {{
            let stm = $stm;
            let mut lost_local = 0u64;
            std::thread::scope(|sc| {
                let owner_stm = stm.clone();
                let cfg = *cfg;
                let owner = sc.spawn(move || {
                    let mut h = owner_stm.handle(0);
                    let mut lost = 0u64;
                    for round in 1..=cfg.rounds {
                        h.atomic(|tx| tx.write(FLAG, 1));
                        if use_fence {
                            h.fence();
                        }
                        let mut s = round;
                        for k in 0..cfg.direct_ops {
                            s = lcg(s);
                            let x = 1 + (s as usize % cfg.data_regs);
                            let marker = (round << 20) | k as u64 | 0x4000_0000_0000_0000;
                            h.write_direct(x, marker);
                            if h.read_direct(x) != marker {
                                lost += 1;
                            }
                        }
                        h.atomic(|tx| tx.write(FLAG, 2));
                    }
                    lost
                });
                for w in 0..workers {
                    let stm = stm.clone();
                    sc.spawn(move || {
                        let mut h = stm.handle(1 + w);
                        let mut s = w as u64 + 7;
                        for _ in 0..cfg.rounds * cfg.worker_txns {
                            s = lcg(s);
                            let x = 1 + (s as usize % cfg.data_regs);
                            h.atomic(|tx| {
                                let flag = tx.read(FLAG)?;
                                if flag != 1 {
                                    let v = tx.read(x)?;
                                    tx.write(x, v.wrapping_add(s) | 1)?;
                                }
                                Ok(())
                            });
                        }
                    });
                }
                lost_local = owner.join().unwrap();
            });
            lost_local
        }};
    }

    let lost: u64 = match kind {
        StmKind::Tl2 => run!(Tl2Stm::with_config(
            StmConfig::new(nregs, threads).chaos_off()
        )),
        StmKind::Tl2Striped { stripes } => {
            run!(Tl2Stm::with_config(
                StmConfig::new(nregs, threads).striped(stripes).chaos_off()
            ))
        }
        StmKind::Tl2Adaptive { policy } => {
            run!(Tl2Stm::with_config(
                StmConfig::new(nregs, threads)
                    .adaptive_stripes(policy)
                    .chaos_off()
            ))
        }
        StmKind::Tl2Clock { clock } => {
            run!(Tl2Stm::with_config(
                StmConfig::new(nregs, threads).clock(clock).chaos_off()
            ))
        }
        StmKind::Norec => run!(NorecStm::with_config(
            StmConfig::new(nregs, threads).chaos_off()
        )),
        StmKind::Glock => run!(GlockStm::with_config(
            StmConfig::new(nregs, threads).chaos_off()
        )),
    };
    let rps = cfg.rounds as f64 / start.elapsed().as_secs_f64();
    (rps, lost)
}

/// The clock-scaling workload (E20): `threads` threads each blind-write
/// their own disjoint register block — the global version clock is the
/// *only* shared metadata in play, so throughput differences between clock
/// backends are pure clock cost. Returns (commits/sec, merged [`Stats`]):
/// under GV1 `clock_bumps == commits`, under GV5 `clock_bumps == 0`.
pub fn disjoint_write_throughput(
    clock: ClockKind,
    stripes: Option<usize>,
    threads: usize,
    txns_per_thread: u64,
) -> (f64, Stats) {
    const REGS_PER_THREAD: usize = 8;
    const WRITES_PER_TXN: usize = 4;
    let mut cfg = StmConfig::new(threads * REGS_PER_THREAD, threads)
        .clock(clock)
        .chaos_off();
    if let Some(stripes) = stripes {
        cfg = cfg.striped(stripes);
    }
    let stm = Tl2Stm::with_config(cfg);
    let start = Instant::now();
    let stats = std::thread::scope(|sc| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let stm = stm.clone();
                sc.spawn(move || {
                    let mut h = stm.handle(t);
                    let base = t * REGS_PER_THREAD;
                    let mut s = (t as u64 + 1) * 0x9E37_79B9;
                    for _ in 0..txns_per_thread {
                        h.atomic(|tx| {
                            for _ in 0..WRITES_PER_TXN {
                                s = lcg(s);
                                tx.write(base + (s as usize % REGS_PER_THREAD), s | 1)?;
                            }
                            Ok(())
                        });
                    }
                    h.stats()
                })
            })
            .collect();
        let mut total = Stats::default();
        for w in workers {
            total.merge(&w.join().unwrap());
        }
        total
    });
    let tput = (threads as u64 * txns_per_thread) as f64 / start.elapsed().as_secs_f64();
    (tput, stats)
}

/// One measured cell of the fence benchmark matrix
/// (driver mode × concurrent privatizers).
#[derive(Clone, Debug)]
pub struct FenceBenchRow {
    /// Grace-period driver mode label (`cooperative`/`background`).
    pub mode: &'static str,
    /// Concurrent privatizers (handles fencing per round).
    pub privatizers: usize,
    pub fences_per_sec: f64,
    /// Fence tickets issued over the run (`privatizers × rounds`).
    pub tickets: u64,
    /// Epoch-table scans the engine performed: `tickets / scans` is the
    /// realized batching factor (must stay ≥ 1 under the driver — the
    /// driver must preserve coalescing, not defeat it).
    pub scans: u64,
}

/// Measure the fence matrix: `rounds` batched privatization fences
/// (`fence_all` over `privatizers` handles) under each grace-period
/// [`DriverMode`]. The workload where the driver either pays for itself
/// (retiring periods while privatizers overlap) or would show up as lost
/// coalescing.
pub fn fence_matrix(privatizers_axis: &[usize], rounds: u64) -> Vec<FenceBenchRow> {
    let mut rows = Vec::new();
    for mode in DriverMode::ALL {
        for &n in privatizers_axis {
            let stm = Tl2Stm::with_config(StmConfig::new(16, n).grace_driver(mode).chaos_off());
            let mut handles: Vec<_> = (0..n).map(|t| stm.handle(t)).collect();
            let start = Instant::now();
            for _ in 0..rounds {
                fence_all(handles.iter_mut());
            }
            let elapsed = start.elapsed().as_secs_f64();
            let tickets = n as u64 * rounds;
            rows.push(FenceBenchRow {
                mode: mode.label(),
                privatizers: n,
                fences_per_sec: tickets as f64 / elapsed,
                tickets,
                scans: stm.runtime().grace().scans(),
            });
        }
    }
    rows
}

/// Render the fence matrix as the `BENCH_fences.json` document — the
/// machine-readable perf trajectory for the fence/driver axis, sibling to
/// [`render_clock_report_json`]'s `BENCH_clocks.json`.
pub fn render_fence_report_json(rows: &[FenceBenchRow], rounds: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench_fences/v1\",\n");
    out.push_str("  \"workload\": \"batched-privatization-fences\",\n");
    out.push_str(&format!("  \"rounds\": {rounds},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"privatizers\": {}, \
             \"fences_per_sec\": {:.1}, \"tickets\": {}, \"scans\": {}}}{sep}\n",
            r.mode, r.privatizers, r.fences_per_sec, r.tickets, r.scans
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One measured cell of the clock benchmark matrix
/// (backend × clock × threads).
#[derive(Clone, Debug)]
pub struct ClockBenchRow {
    /// Storage backend label (`tl2` or `tl2-stripedN`).
    pub backend: String,
    /// Clock backend label (`gv1`/`gv4`/`gv5`).
    pub clock: &'static str,
    pub threads: usize,
    pub commits_per_sec: f64,
    pub aborts: u64,
    pub clock_bumps: u64,
}

/// Measure the full backend × clock × threads matrix on the disjoint-write
/// workload (the shape where the clock is the entire shared-metadata cost).
pub fn clock_matrix(threads_axis: &[usize], txns_per_thread: u64) -> Vec<ClockBenchRow> {
    let backends: [(&str, Option<usize>); 2] = [("tl2", None), ("tl2-striped64", Some(64))];
    let mut rows = Vec::new();
    for (backend, stripes) in backends {
        for clock in ClockKind::ALL {
            for &threads in threads_axis {
                let (tput, stats) =
                    disjoint_write_throughput(clock, stripes, threads, txns_per_thread);
                rows.push(ClockBenchRow {
                    backend: backend.to_string(),
                    clock: clock.label(),
                    threads,
                    commits_per_sec: tput,
                    aborts: stats.aborts_total(),
                    clock_bumps: stats.clock_bumps,
                });
            }
        }
    }
    rows
}

/// Render the clock matrix as the `BENCH_clocks.json` document: a stable,
/// machine-readable schema so later PRs can diff perf trajectories.
/// Hand-rolled (no serde in the vendored-deps build); every value is a
/// string-escaped label or a finite number, so the output is always valid
/// JSON.
pub fn render_clock_report_json(rows: &[ClockBenchRow], txns_per_thread: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench_clocks/v1\",\n");
    out.push_str("  \"workload\": \"disjoint-write\",\n");
    out.push_str(&format!("  \"txns_per_thread\": {txns_per_thread},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"clock\": \"{}\", \"threads\": {}, \
             \"commits_per_sec\": {:.1}, \"aborts\": {}, \"clock_bumps\": {}}}{sep}\n",
            r.backend, r.clock, r.threads, r.commits_per_sec, r.aborts, r.clock_bumps
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The stripe-churn workload (the adaptive-striping cost axis): `threads`
/// threads each hammer their own *disjoint* block of `nregs / threads`
/// registers — so on a per-register table nothing ever conflicts, and
/// every cross-thread abort on a striped table is by construction a false
/// conflict. Exactly the workload where a fixed stripe count either wastes
/// memory (huge table, small file) or drowns in false conflicts (small
/// table, large file), and where the adaptive table should converge.
/// Returns (commits/sec, merged [`Stats`], adaptive resizes — 0 for fixed
/// storage).
pub fn stripe_churn_throughput(
    storage: StorageKind,
    threads: usize,
    nregs: usize,
    txns_per_thread: u64,
) -> (f64, Stats, u64) {
    const WRITES_PER_TXN: usize = 4;
    assert!(
        threads <= nregs,
        "stripe-churn needs at least one register per thread"
    );
    let block = nregs / threads;
    let stm = Tl2Stm::with_config(StmConfig::new(nregs, threads).storage(storage).chaos_off());
    let start = Instant::now();
    let stats = std::thread::scope(|sc| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let stm = stm.clone();
                sc.spawn(move || {
                    let mut h = stm.handle(t);
                    let base = t * block;
                    let mut s = (t as u64 + 1) * 0x9E37_79B9;
                    for _ in 0..txns_per_thread {
                        h.atomic(|tx| {
                            for _ in 0..WRITES_PER_TXN {
                                s = lcg(s);
                                tx.write(base + (s as usize % block), s | 1)?;
                            }
                            Ok(())
                        });
                    }
                    h.stats()
                })
            })
            .collect();
        let mut total = Stats::default();
        for w in workers {
            total.merge(&w.join().unwrap());
        }
        total
    });
    let tput = (threads as u64 * txns_per_thread) as f64 / start.elapsed().as_secs_f64();
    (tput, stats, stm.stripe_resizes())
}

/// One measured cell of the stripe benchmark matrix
/// (storage policy × threads × register-file size).
#[derive(Clone, Debug)]
pub struct StripeBenchRow {
    /// Storage policy label (`per-register`, `striped-N`,
    /// `adaptive-START-MAX`).
    pub policy: String,
    pub threads: usize,
    /// Register-file size the workload churned over.
    pub nregs: usize,
    pub commits_per_sec: f64,
    /// False conflicts observed across all handles.
    pub false_conflicts: u64,
    /// Adaptive generations published (0 for fixed policies).
    pub resizes: u64,
}

/// The storage-policy axis the stripe benchmarks sweep: a deliberately
/// undersized fixed table (false conflicts bite), a comfortable fixed
/// table, and the adaptive table starting at the undersized count — whose
/// trajectory (resizes > 0, falling false-conflict rate) is the point.
pub fn stripe_policies() -> Vec<StorageKind> {
    vec![
        StorageKind::Striped { stripes: 16 },
        StorageKind::Striped { stripes: 4096 },
        StorageKind::Adaptive(AdaptivePolicy {
            start: 16,
            max: 4096,
            threshold: 2,
            // Small enough that even CI's 500-txn smoke completes several
            // evaluation windows per run. Note: on a 1-core host short
            // disjoint-write transactions rarely overlap, so false
            // conflicts — and therefore resizes — may legitimately be 0
            // here; the trajectory lights up on real multicore (ROADMAP
            // follow-up), and deterministic growth evidence lives in the
            // MapRehash conformance scenario and the adaptive_stripes
            // integration tests.
            window: 128,
        }),
    ]
}

/// Measure the stripe matrix: every policy of [`stripe_policies`] ×
/// `threads_axis` × `nregs_axis` on the stripe-churn workload.
pub fn stripe_matrix(
    threads_axis: &[usize],
    nregs_axis: &[usize],
    txns_per_thread: u64,
) -> Vec<StripeBenchRow> {
    let mut rows = Vec::new();
    for storage in stripe_policies() {
        for &nregs in nregs_axis {
            for &threads in threads_axis {
                let (tput, stats, resizes) =
                    stripe_churn_throughput(storage, threads, nregs, txns_per_thread);
                rows.push(StripeBenchRow {
                    policy: storage.label(),
                    threads,
                    nregs,
                    commits_per_sec: tput,
                    false_conflicts: stats.false_conflicts,
                    resizes,
                });
            }
        }
    }
    rows
}

/// Render the stripe matrix as the `BENCH_stripes.json` document
/// (`bench_stripes/v1`) — the machine-readable perf trajectory for the
/// storage axis, sibling to `BENCH_clocks.json` and `BENCH_fences.json`.
pub fn render_stripe_report_json(rows: &[StripeBenchRow], txns_per_thread: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench_stripes/v1\",\n");
    out.push_str("  \"workload\": \"stripe-churn\",\n");
    out.push_str(&format!("  \"txns_per_thread\": {txns_per_thread},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"threads\": {}, \"nregs\": {}, \
             \"commits_per_sec\": {:.1}, \"false_conflicts\": {}, \"resizes\": {}}}{sep}\n",
            r.policy, r.threads, r.nregs, r.commits_per_sec, r.false_conflicts, r.resizes
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One measured cell of the governor benchmark matrix (config × phase).
#[derive(Clone, Debug)]
pub struct GovernorBenchRow {
    /// Configuration label (`auto`, `static-gv1-striped64`, …).
    pub config: String,
    /// Workload phase (`read-heavy` / `write-heavy`).
    pub phase: &'static str,
    pub commits_per_sec: f64,
    /// Generations the governor published *during this phase* (0 for
    /// static configurations).
    pub resizes: u64,
    /// Clock-discipline handoffs the governor performed during this phase
    /// (0 for static configurations).
    pub clock_switches: u64,
}

/// The configuration axis of the governor benchmark: the self-tuning
/// [`StmConfig::auto`] instance against each static clock discipline on a
/// right-sized fixed table. Exactly one discipline is the best static
/// choice per phase and host — and committing statically to the wrong one
/// is the mis-sizing the governor exists to avoid. (Stripe mis-sizing is
/// deliberately not on this axis: its penalty is false conflicts, which
/// need real transaction overlap — on a 1-core host an undersized table
/// measures *faster*, not slower; see [`stripe_policies`]. The governor's
/// table trajectory is instead reported by the `auto-cold` rows.)
pub fn governor_configs(nregs: usize, threads: usize) -> Vec<(String, StmConfig)> {
    let mut v = vec![("auto".into(), StmConfig::auto(nregs, threads).chaos_off())];
    for clock in ClockKind::ALL {
        v.push((
            format!("static-{}-striped64", clock.label()),
            StmConfig::new(nregs, threads)
                .striped(64)
                .clock(clock)
                .chaos_off(),
        ));
    }
    v
}

/// Run the governor phase-shift workload on one configured instance: a
/// read-heavy phase (10% writing transactions) followed — on the *same*
/// instance, so an adaptive configuration must re-tune mid-run — by a
/// write-heavy phase (90% writing transactions). Writing transactions
/// touch only their thread's disjoint register block, so aborts are false
/// conflicts; read-only transactions sample the whole file. Returns one
/// row per phase with the phase's throughput and the governor activity
/// (resize publications, clock handoffs) it triggered.
pub fn governor_phase_shift(
    label: &str,
    cfg: StmConfig,
    threads: usize,
    nregs: usize,
    txns_per_phase: u64,
) -> Vec<GovernorBenchRow> {
    let stm = Tl2Stm::with_config(cfg);
    governor_phase_shift_on(&stm, label, threads, nregs, txns_per_phase)
}

/// [`governor_phase_shift`] on a caller-owned instance, so a prior pass
/// can serve as the convergence warm-up: a governed instance that already
/// lived through one shift starts the next read-heavy phase tuned for the
/// *write*-heavy end and must re-tune — the converged steady state the
/// report's `auto` rows measure.
pub fn governor_phase_shift_on(
    stm: &Tl2Stm,
    label: &str,
    threads: usize,
    nregs: usize,
    txns_per_phase: u64,
) -> Vec<GovernorBenchRow> {
    const OPS_PER_TXN: usize = 4;
    let block = nregs / threads;
    let mut rows = Vec::new();
    for (phase, write_pct) in [("read-heavy", 10u64), ("write-heavy", 90u64)] {
        let resizes_before = stm.stripe_resizes();
        let switches_before = stm.clock_switches();
        let start = Instant::now();
        std::thread::scope(|sc| {
            for t in 0..threads {
                let stm = stm.clone();
                sc.spawn(move || {
                    let mut h = stm.handle(t);
                    let base = t * block;
                    let mut s = (t as u64 + 1) * 0x9E37_79B9 + write_pct;
                    for _ in 0..txns_per_phase {
                        s = lcg(s);
                        // The governor folds whole-commit read/write mix,
                        // so each transaction is either purely reading or
                        // writing — the share is the phase's write_pct.
                        if (s >> 8) % 100 < write_pct {
                            h.atomic(|tx| {
                                for _ in 0..OPS_PER_TXN {
                                    s = lcg(s);
                                    tx.write(base + (s as usize % block), s | 1)?;
                                }
                                Ok(())
                            });
                        } else {
                            h.atomic(|tx| {
                                let mut acc = 0u64;
                                for _ in 0..OPS_PER_TXN {
                                    s = lcg(s);
                                    acc = acc.wrapping_add(tx.read(s as usize % nregs)?);
                                }
                                Ok(acc)
                            });
                        }
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        rows.push(GovernorBenchRow {
            config: label.to_string(),
            phase,
            commits_per_sec: (threads as u64 * txns_per_phase) as f64 / elapsed,
            resizes: stm.stripe_resizes() - resizes_before,
            clock_switches: stm.clock_switches() - switches_before,
        });
    }
    rows
}

/// Measure the full governor matrix: every configuration of
/// [`governor_configs`] through the phase-shift workload. The governed
/// instance runs the shift twice: the first pass is reported as
/// `auto-cold` (the adaptation transient — the seeded table shrinking
/// under calm traffic, the first clock handoff), the second as `auto`
/// (converged steady state: the table already at its tuned size, one
/// clock re-tune per phase) — the row the best-static comparison is
/// about.
pub fn governor_matrix(threads: usize, nregs: usize, txns_per_phase: u64) -> Vec<GovernorBenchRow> {
    let mut rows = Vec::new();
    for (label, cfg) in governor_configs(nregs, threads) {
        if label == "auto" {
            let stm = Tl2Stm::with_config(cfg);
            rows.extend(governor_phase_shift_on(
                &stm,
                "auto-cold",
                threads,
                nregs,
                txns_per_phase,
            ));
            rows.extend(governor_phase_shift_on(
                &stm,
                "auto",
                threads,
                nregs,
                txns_per_phase,
            ));
        } else {
            rows.extend(governor_phase_shift(
                &label,
                cfg,
                threads,
                nregs,
                txns_per_phase,
            ));
        }
    }
    rows
}

/// Render the governor matrix as the `BENCH_governor.json` document
/// (`bench_governor/v1`): converged-auto throughput per phase against the
/// best and worst static configurations, plus the governor activity that
/// got it there — the self-tuning perf trajectory later PRs diff against.
pub fn render_governor_report_json(rows: &[GovernorBenchRow], txns_per_phase: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench_governor/v1\",\n");
    out.push_str("  \"workload\": \"phase-shift\",\n");
    out.push_str(&format!("  \"txns_per_phase\": {txns_per_phase},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"phase\": \"{}\", \
             \"commits_per_sec\": {:.1}, \"resizes\": {}, \"clock_switches\": {}}}{sep}\n",
            r.config, r.phase, r.commits_per_sec, r.resizes, r.clock_switches
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One measured cell of the typed-frontend benchmark
/// (retry strategy × bounded-queue handoff).
#[derive(Clone, Debug)]
pub struct TVarBenchRow {
    /// Retry strategy label (`blocking` / `spin`).
    pub strategy: &'static str,
    /// Items handed producer → consumer per second.
    pub items_per_sec: f64,
    /// Displaced value boxes retired through the grace engine.
    pub retired_boxes: u64,
    /// Retired boxes actually freed by completing-scan collection.
    pub collected_boxes: u64,
    /// Collection passes that freed at least one box: `retired_boxes /
    /// collect_passes` is the reclamation batching factor.
    pub collect_passes: u64,
}

/// The [`RetryStrategy`] label used across tvar bench rows.
pub fn retry_strategy_label(strategy: RetryStrategy) -> &'static str {
    match strategy {
        RetryStrategy::Block => "blocking",
        RetryStrategy::Spin => "spin",
    }
}

/// The typed-frontend handoff workload: a bounded (capacity-8) queue in a
/// `TVar<VecDeque<u64>>`, one producer pushing `1..=items` (blocking via
/// `Transaction::retry` on full), one consumer draining (blocking on
/// empty), both under the given [`RetryStrategy`]. Every committed queue
/// replacement retires the displaced box through the grace engine, so the
/// run doubles as an EBR throughput measurement: the returned row carries
/// the retire/collect counters alongside items/sec.
pub fn tvar_queue_throughput(strategy: RetryStrategy, items: u64) -> TVarBenchRow {
    const CAP: usize = 8;
    let typed: TypedStm<Tl2Kind> = TypedStm::with_config(StmConfig::new(4, 2).chaos_off());
    let queue = typed.new_tvar(VecDeque::<u64>::new());
    let start = Instant::now();
    std::thread::scope(|sc| {
        let producer_typed = typed.clone();
        let producer_queue = queue.clone();
        sc.spawn(move || {
            let mut h = producer_typed.handle(0);
            h.set_retry_strategy(strategy);
            for item in 1..=items {
                h.atomically(|tx| {
                    let mut q = tx.read(&producer_queue)?;
                    if q.len() >= CAP {
                        return tx.retry();
                    }
                    q.push_back(item);
                    tx.write(&producer_queue, q)
                });
            }
        });
        let mut h = typed.handle(1);
        h.set_retry_strategy(strategy);
        for _ in 0..items {
            h.atomically(|tx| {
                let mut q = tx.read(&queue)?;
                match q.pop_front() {
                    None => tx.retry(),
                    Some(item) => {
                        tx.write(&queue, q)?;
                        Ok(item)
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    // Settle reclamation outside the timed region: the fence's completing
    // scan collects everything the handoff retired.
    typed.handle(0).inner().fence();
    let grace = typed.stm().runtime().grace();
    TVarBenchRow {
        strategy: retry_strategy_label(strategy),
        items_per_sec: items as f64 / elapsed,
        retired_boxes: grace.retired_boxes(),
        collected_boxes: grace.collected_boxes(),
        collect_passes: grace.collect_passes(),
    }
}

/// Measure the typed-frontend matrix: the bounded-queue handoff under
/// each retry strategy (blocking sleep-on-read-set vs spinning rerun).
pub fn tvar_matrix(items: u64) -> Vec<TVarBenchRow> {
    [RetryStrategy::Block, RetryStrategy::Spin]
        .into_iter()
        .map(|s| tvar_queue_throughput(s, items))
        .collect()
}

/// Render the tvar matrix as the `BENCH_tvar.json` document
/// (`bench_tvar/v1`) — the typed-frontend perf trajectory: spin vs
/// blocking handoff throughput plus the EBR batching factor
/// (`boxes_per_collect` = retired boxes / collection passes).
pub fn render_tvar_report_json(rows: &[TVarBenchRow], items: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench_tvar/v1\",\n");
    out.push_str("  \"workload\": \"bounded-queue-handoff\",\n");
    out.push_str(&format!("  \"items\": {items},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let per_collect = r.retired_boxes as f64 / r.collect_passes.max(1) as f64;
        out.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"items_per_sec\": {:.1}, \
             \"retired_boxes\": {}, \"collected_boxes\": {}, \
             \"collect_passes\": {}, \"boxes_per_collect\": {per_collect:.2}}}{sep}\n",
            r.strategy, r.items_per_sec, r.retired_boxes, r.collected_boxes, r.collect_passes
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One per-op-class row of the service benchmark: how many requests of
/// this class the fleet completed and where its latency tail sits.
#[derive(Clone, Debug)]
pub struct ServiceBenchRow {
    /// Op-class label (`get` / `put` / `rmw` / `scan` / `publish`).
    pub class: &'static str,
    /// Requests of this class completed across the fleet.
    pub count: u64,
    /// Median latency (nanoseconds, histogram bucket upper edge).
    pub p50_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// 99.9th-percentile latency.
    pub p999_ns: u64,
}

/// Run the full-scale service workload (`tm_service::ServiceCfg::full`
/// with `ops_per_client` substituted) on TL2 and return the fleet report
/// plus one latency row per op class. Unrecorded by design — the typed
/// session registers hold heap addresses — so this is the bench-scale
/// companion of the recorded `Scenario::Service` conformance run.
pub fn service_matrix(ops_per_client: u64) -> (tm_service::ServiceReport, Vec<ServiceBenchRow>) {
    let cfg = tm_service::ServiceCfg {
        ops_per_client,
        ..tm_service::ServiceCfg::full()
    };
    let stm = Tl2Stm::with_config(StmConfig::new(cfg.nregs(), cfg.nthreads()).chaos_off());
    let report = tm_service::run_service(&stm, &cfg);
    let rows = OpClass::ALL
        .iter()
        .map(|&class| {
            let h = report.hists.get(class);
            let q = h.quantiles();
            ServiceBenchRow {
                class: class.label(),
                count: h.count(),
                p50_ns: q.p50,
                p99_ns: q.p99,
                p999_ns: q.p999,
            }
        })
        .collect();
    (report, rows)
}

/// Render one service run as the `BENCH_service.json` document
/// (`bench_service/v1`): fleet shape and throughput at the top, one
/// latency row per op class underneath. `scan_anomalies` is included so
/// trajectory diffs would catch a privatization-safety regression showing
/// up at bench scale before any litmus test shrinks it.
pub fn render_service_report_json(
    report: &tm_service::ServiceReport,
    rows: &[ServiceBenchRow],
    cfg: &tm_service::ServiceCfg,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench_service/v1\",\n");
    out.push_str("  \"workload\": \"sharded-kv-service\",\n");
    out.push_str(&format!("  \"shards\": {},\n", cfg.shards));
    out.push_str(&format!("  \"keys_per_shard\": {},\n", cfg.keys_per_shard));
    out.push_str(&format!("  \"clients\": {},\n", cfg.clients));
    out.push_str(&format!("  \"ops_per_client\": {},\n", cfg.ops_per_client));
    out.push_str(&format!("  \"zipf_theta\": {:.2},\n", cfg.theta));
    out.push_str(&format!(
        "  \"elapsed_secs\": {:.4},\n",
        report.elapsed_secs
    ));
    out.push_str(&format!("  \"total_ops\": {},\n", report.total_ops));
    out.push_str(&format!("  \"ops_per_sec\": {:.1},\n", report.ops_per_sec));
    out.push_str(&format!("  \"snapshots\": {},\n", report.snapshots));
    out.push_str(&format!(
        "  \"scan_anomalies\": {},\n",
        report.scan_anomalies
    ));
    out.push_str(&format!("  \"resident_keys\": {},\n", report.resident_keys));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"class\": \"{}\", \"count\": {}, \"p50_ns\": {}, \
             \"p99_ns\": {}, \"p999_ns\": {}}}{sep}\n",
            r.class, r.count, r.p50_ns, r.p99_ns, r.p999_ns
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_mix() -> MixCfg {
        MixCfg {
            nregs: 64,
            txn_len: 4,
            write_pct: 50,
            txns_per_thread: 200,
            privatize_every: 16,
            direct_ops: 4,
        }
    }

    #[test]
    fn mix_runs_on_all_stms() {
        for kind in StmKind::ALL {
            let tput = mix_throughput(kind, 2, &tiny_mix(), FencePolicy::Selective);
            assert!(tput > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn fence_all_policy_runs() {
        let tput = mix_throughput(StmKind::Tl2, 2, &tiny_mix(), FencePolicy::AfterEvery);
        assert!(tput > 0.0);
    }

    #[test]
    fn striped_kind_runs_and_is_labeled() {
        let kind = StmKind::Tl2Striped { stripes: 16 };
        assert_eq!(kind.label(), "tl2-striped16");
        let tput = mix_throughput(kind, 2, &tiny_mix(), FencePolicy::Selective);
        assert!(tput > 0.0);
        let cfg = PrivCfg {
            data_regs: 8,
            direct_ops: 8,
            rounds: 100,
            worker_txns: 2,
        };
        let (rps, lost) = privatization_throughput(kind, 2, &cfg, true);
        assert!(rps > 0.0);
        assert_eq!(lost, 0, "fenced striped TL2 must not lose updates");
    }

    #[test]
    fn contended_counter_reports_backoff_stats() {
        let (tput, stats) = contended_counter(2, 500, BackoffCfg::default());
        assert!(tput > 0.0);
        assert_eq!(stats.commits, 1000);
        // retries/backoff_ns may be zero on an uncontended (single-core)
        // run; they must at least be consistent.
        assert_eq!(stats.retries, stats.aborts_total());
    }

    /// Minimal structural JSON check (no serde in this build): validates
    /// balanced objects/arrays, quoted strings, and bare numbers — enough
    /// to catch any malformed `render_clock_report_json` output.
    fn assert_valid_json(s: &str) {
        fn skip_ws(b: &[u8], mut i: usize) -> usize {
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            i
        }
        fn value(b: &[u8], i: usize) -> Result<usize, String> {
            let i = skip_ws(b, i);
            match b.get(i) {
                Some(b'{') => {
                    let mut i = skip_ws(b, i + 1);
                    if b.get(i) == Some(&b'}') {
                        return Ok(i + 1);
                    }
                    loop {
                        i = string(b, skip_ws(b, i))?;
                        i = skip_ws(b, i);
                        if b.get(i) != Some(&b':') {
                            return Err(format!("expected ':' at {i}"));
                        }
                        i = value(b, i + 1)?;
                        i = skip_ws(b, i);
                        match b.get(i) {
                            Some(b',') => i += 1,
                            Some(b'}') => return Ok(i + 1),
                            _ => return Err(format!("expected ',' or '}}' at {i}")),
                        }
                    }
                }
                Some(b'[') => {
                    let mut i = skip_ws(b, i + 1);
                    if b.get(i) == Some(&b']') {
                        return Ok(i + 1);
                    }
                    loop {
                        i = value(b, i)?;
                        i = skip_ws(b, i);
                        match b.get(i) {
                            Some(b',') => i += 1,
                            Some(b']') => return Ok(i + 1),
                            _ => return Err(format!("expected ',' or ']' at {i}")),
                        }
                    }
                }
                Some(b'"') => string(b, i),
                Some(c) if c.is_ascii_digit() || *c == b'-' => {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_digit() || b"+-.eE".contains(&b[j])) {
                        j += 1;
                    }
                    Ok(j)
                }
                _ => Err(format!("unexpected byte at {i}")),
            }
        }
        fn string(b: &[u8], i: usize) -> Result<usize, String> {
            if b.get(i) != Some(&b'"') {
                return Err(format!("expected '\"' at {i}"));
            }
            let mut i = i + 1;
            while let Some(&c) = b.get(i) {
                match c {
                    b'"' => return Ok(i + 1),
                    b'\\' => i += 2,
                    _ => i += 1,
                }
            }
            Err("unterminated string".into())
        }
        let b = s.as_bytes();
        let end = value(b, 0).unwrap_or_else(|e| panic!("invalid JSON ({e}):\n{s}"));
        assert_eq!(skip_ws(b, end), b.len(), "trailing garbage:\n{s}");
    }

    #[test]
    fn disjoint_write_workload_exposes_the_clock_axis() {
        let (tput, gv1) = disjoint_write_throughput(ClockKind::Gv1, None, 2, 300);
        assert!(tput > 0.0);
        assert_eq!(gv1.commits, 600);
        assert_eq!(gv1.clock_bumps, 600, "gv1: one bump per writing commit");
        let (_, gv5) = disjoint_write_throughput(ClockKind::Gv5, None, 2, 300);
        assert_eq!(gv5.commits, 600);
        assert_eq!(gv5.clock_bumps, 0, "gv5: disjoint writes never bump");
        // Striped storage composes with the clock axis.
        let (_, striped) = disjoint_write_throughput(ClockKind::Gv5, Some(64), 2, 300);
        assert_eq!(striped.commits, 600);
        assert_eq!(striped.clock_bumps, 0);
    }

    #[test]
    fn clock_matrix_and_json_report() {
        let rows = clock_matrix(&[1, 2], 50);
        // 2 backends × 3 clocks × 2 thread counts.
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().any(|r| r.backend == "tl2" && r.clock == "gv5"));
        let json = render_clock_report_json(&rows, 50);
        assert_valid_json(&json);
        for key in [
            "\"schema\": \"bench_clocks/v1\"",
            "\"backend\"",
            "\"clock\"",
            "\"threads\"",
            "\"commits_per_sec\"",
            "\"aborts\"",
            "\"clock_bumps\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_valid_json(&render_clock_report_json(&[], 1));
    }

    #[test]
    fn fence_matrix_and_json_report() {
        let rows = fence_matrix(&[1, 2], 20);
        // 2 driver modes × 2 privatizer counts.
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.tickets, r.privatizers as u64 * 20);
            assert!(r.fences_per_sec > 0.0, "{}/{}", r.mode, r.privatizers);
            assert!(
                r.scans <= r.tickets,
                "{}/{}: driver must never defeat coalescing (scans {} > tickets {})",
                r.mode,
                r.privatizers,
                r.scans,
                r.tickets
            );
        }
        assert!(rows.iter().any(|r| r.mode == "background"));
        assert!(rows.iter().any(|r| r.mode == "cooperative"));
        let json = render_fence_report_json(&rows, 20);
        assert_valid_json(&json);
        for key in [
            "\"schema\": \"bench_fences/v1\"",
            "\"mode\"",
            "\"privatizers\"",
            "\"fences_per_sec\"",
            "\"tickets\"",
            "\"scans\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_valid_json(&render_fence_report_json(&[], 1));
    }

    #[test]
    fn adaptive_kind_runs_and_is_labeled() {
        let kind = StmKind::Tl2Adaptive {
            policy: AdaptivePolicy {
                start: 8,
                max: 256,
                threshold: 2,
                window: 64,
            },
        };
        assert_eq!(kind.label(), "tl2-adaptive8-256");
        let tput = mix_throughput(kind, 2, &tiny_mix(), FencePolicy::Selective);
        assert!(tput > 0.0);
    }

    #[test]
    fn stripe_churn_exposes_the_storage_axis() {
        // Per-register: disjoint blocks never conflict at all.
        let (tput, stats, resizes) = stripe_churn_throughput(StorageKind::PerRegister, 2, 64, 300);
        assert!(tput > 0.0);
        assert_eq!(stats.commits, 600);
        assert_eq!(stats.false_conflicts, 0, "per-register is precise");
        assert_eq!(resizes, 0);
        // Fixed striped: runs, never resizes.
        let (_, stats, resizes) =
            stripe_churn_throughput(StorageKind::Striped { stripes: 4 }, 2, 64, 300);
        assert_eq!(stats.commits, 600);
        assert_eq!(resizes, 0, "fixed tables never resize");
        // Adaptive with an unconditional growth policy: must resize and
        // report it through the row plumbing.
        let adaptive = StorageKind::Adaptive(AdaptivePolicy {
            start: 1,
            max: 64,
            threshold: 0,
            window: 16,
        });
        let (_, stats, resizes) = stripe_churn_throughput(adaptive, 2, 64, 300);
        assert_eq!(stats.commits, 600);
        assert!(resizes >= 1, "unconditional growth must resize");
        assert!(stats.current_stripes > 1, "{stats:?}");
    }

    #[test]
    fn stripe_matrix_and_json_report() {
        let rows = stripe_matrix(&[1, 2], &[64], 50);
        // 3 policies × 1 nregs × 2 thread counts.
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|r| r.policy.starts_with("adaptive-")));
        assert!(rows.iter().any(|r| r.policy == "striped-16"));
        let json = render_stripe_report_json(&rows, 50);
        assert_valid_json(&json);
        for key in [
            "\"schema\": \"bench_stripes/v1\"",
            "\"policy\"",
            "\"threads\"",
            "\"nregs\"",
            "\"commits_per_sec\"",
            "\"false_conflicts\"",
            "\"resizes\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_valid_json(&render_stripe_report_json(&[], 1));
    }

    #[test]
    fn governor_matrix_and_json_report() {
        // 3_000 txns/phase × 2 threads crosses plenty of 128-commit
        // governor windows and several 1024-commit table windows, so the
        // governed rows' self-tuning is deterministic: the cold pass must
        // shrink the 64-stripe seeded table under the calm read phase and
        // switch the clock at the write shift; the converged pass must
        // re-tune the clock once per phase.
        let rows = governor_matrix(2, 1024, 3_000);
        // auto-cold + auto + 3 static clocks, × 2 phases.
        assert_eq!(rows.len(), 10);
        let cell = |config: &str, phase: &str| {
            rows.iter()
                .find(|r| r.config == config && r.phase == phase)
                .unwrap()
        };
        for r in &rows {
            assert!(r.commits_per_sec > 0.0, "{}/{}", r.config, r.phase);
            if !r.config.starts_with("auto") {
                assert_eq!(r.resizes, 0, "static configs never resize");
                assert_eq!(r.clock_switches, 0, "static configs never switch");
            }
        }
        assert!(
            cell("auto-cold", "read-heavy").resizes >= 1,
            "calm read-heavy traffic must shrink the seeded table: {:?}",
            cell("auto-cold", "read-heavy")
        );
        assert!(
            cell("auto-cold", "write-heavy").clock_switches >= 1,
            "the write-heavy shift must switch the clock: {:?}",
            cell("auto-cold", "write-heavy")
        );
        // Converged: the instance enters each phase tuned for the other
        // one and must re-tune exactly as telemetry directs.
        for phase in ["read-heavy", "write-heavy"] {
            assert!(
                cell("auto", phase).clock_switches >= 1,
                "converged auto must re-tune the clock each phase: {:?}",
                cell("auto", phase)
            );
        }
        let json = render_governor_report_json(&rows, 3_000);
        assert_valid_json(&json);
        for key in [
            "\"schema\": \"bench_governor/v1\"",
            "\"config\"",
            "\"phase\"",
            "\"commits_per_sec\"",
            "\"resizes\"",
            "\"clock_switches\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_valid_json(&render_governor_report_json(&[], 1));
    }

    #[test]
    fn tvar_matrix_and_json_report() {
        let rows = tvar_matrix(200);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].strategy, "blocking");
        assert_eq!(rows[1].strategy, "spin");
        for r in &rows {
            assert!(r.items_per_sec > 0.0, "{}", r.strategy);
            // Every committed queue replacement retires the displaced box:
            // 200 producer pushes + 200 consumer pops, minimum (retries
            // that reach commit add more).
            assert!(r.retired_boxes >= 400, "{}: {r:?}", r.strategy);
            assert_eq!(
                r.collected_boxes, r.retired_boxes,
                "{}: the settling fence collects everything",
                r.strategy
            );
        }
        let json = render_tvar_report_json(&rows, 200);
        assert_valid_json(&json);
        for key in [
            "\"schema\": \"bench_tvar/v1\"",
            "\"strategy\"",
            "\"items_per_sec\"",
            "\"retired_boxes\"",
            "\"collected_boxes\"",
            "\"collect_passes\"",
            "\"boxes_per_collect\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_valid_json(&render_tvar_report_json(&[], 1));
    }

    #[test]
    fn service_matrix_and_json_report() {
        let (report, rows) = service_matrix(60);
        assert_eq!(rows.len(), 5);
        let labels: Vec<&str> = rows.iter().map(|r| r.class).collect();
        assert_eq!(labels, ["get", "put", "rmw", "scan", "publish"]);
        assert!(report.ops_per_sec > 0.0);
        assert_eq!(report.scan_anomalies, 0, "bulk reads must be stable");
        assert_eq!(
            report.session_ops, report.op_counts,
            "typed sessions must account for every timed op"
        );
        assert_eq!(
            report.total_ops,
            rows.iter().map(|r| r.count).sum::<u64>(),
            "every op lands in exactly one class row"
        );
        // Scans are 5% of a 4x60-op fleet — and every scan also issues a
        // publish-back, so both tail classes must have fired.
        assert!(rows[3].count > 0, "no scans in {rows:?}");
        assert_eq!(rows[3].count, rows[4].count, "publish pairs with scan");
        for r in &rows {
            if r.count > 0 {
                assert!(
                    r.p50_ns > 0 && r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns,
                    "{r:?}"
                );
            }
        }
        let cfg = tm_service::ServiceCfg {
            ops_per_client: 60,
            ..tm_service::ServiceCfg::full()
        };
        let json = render_service_report_json(&report, &rows, &cfg);
        assert_valid_json(&json);
        for key in [
            "\"schema\": \"bench_service/v1\"",
            "\"shards\"",
            "\"keys_per_shard\"",
            "\"clients\"",
            "\"ops_per_client\"",
            "\"zipf_theta\"",
            "\"ops_per_sec\"",
            "\"snapshots\"",
            "\"scan_anomalies\"",
            "\"class\"",
            "\"count\"",
            "\"p50_ns\"",
            "\"p99_ns\"",
            "\"p999_ns\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_valid_json(&render_service_report_json(&report, &[], &cfg));
    }

    #[test]
    fn tl2_clock_kinds_run_and_are_labeled() {
        assert_eq!(
            StmKind::Tl2Clock {
                clock: ClockKind::Gv4
            }
            .label(),
            "tl2-gv4"
        );
        for kind in StmKind::TL2_CLOCKS {
            let tput = mix_throughput(kind, 2, &tiny_mix(), FencePolicy::Selective);
            assert!(tput > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn privatization_with_fence_loses_nothing() {
        let cfg = PrivCfg {
            data_regs: 8,
            direct_ops: 16,
            rounds: 300,
            worker_txns: 2,
        };
        let (rps, lost) = privatization_throughput(StmKind::Tl2, 2, &cfg, true);
        assert!(rps > 0.0);
        assert_eq!(lost, 0, "fenced TL2 privatization must not lose updates");
        let (_, lost) = privatization_throughput(StmKind::Norec, 2, &cfg, false);
        assert_eq!(lost, 0, "NOrec without fences must not lose updates");
        let (_, lost) = privatization_throughput(StmKind::Glock, 2, &cfg, false);
        assert_eq!(lost, 0, "glock without fences must not lose updates");
    }
}
