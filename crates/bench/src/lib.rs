//! Shared workload generators and measurement helpers for the benchmark
//! harness (experiments E15–E17 in DESIGN.md).
//!
//! The workloads are STAMP-shaped synthetics: parameterized transaction
//! length, write share, register count (contention), thread count, and
//! fence policy — the knobs that drive the fence-overhead results of Yoo et
//! al. cited in the paper's Sec 1.

use std::time::Instant;
use tm_stm::prelude::*;

/// Deterministic splitmix-style RNG step.
#[inline]
pub fn lcg(s: u64) -> u64 {
    s.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// Which STM implementation (and storage backend) to drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StmKind {
    /// TL2 with per-register ownership records.
    Tl2,
    /// TL2 over a striped orec table.
    Tl2Striped {
        stripes: usize,
    },
    Norec,
    Glock,
}

impl StmKind {
    /// The classic algorithm trio (per-register TL2 storage); striped
    /// variants are enumerated explicitly by the storage benchmarks.
    pub const ALL: [StmKind; 3] = [StmKind::Tl2, StmKind::Norec, StmKind::Glock];

    pub fn label(self) -> String {
        match self {
            StmKind::Tl2 => "tl2".into(),
            StmKind::Tl2Striped { stripes } => format!("tl2-striped{stripes}"),
            StmKind::Norec => "norec".into(),
            StmKind::Glock => "glock".into(),
        }
    }
}

/// Fence policy for the overhead experiments (E15).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FencePolicy {
    /// No fences at all (unsafe for privatizing programs; the lower bound).
    None,
    /// Fences only where the privatization discipline needs them.
    Selective,
    /// A fence after every transaction (the conservative placement whose
    /// cost Yoo et al. measured at 32% avg / 107% worst case).
    AfterEvery,
}

impl FencePolicy {
    pub const ALL: [FencePolicy; 3] = [
        FencePolicy::None,
        FencePolicy::Selective,
        FencePolicy::AfterEvery,
    ];

    pub fn label(self) -> &'static str {
        match self {
            FencePolicy::None => "no-fence",
            FencePolicy::Selective => "selective",
            FencePolicy::AfterEvery => "fence-all",
        }
    }
}

/// A transactional mix workload with periodic privatization episodes.
///
/// Register 0 is the privatization flag; registers `1..=priv_regs` form the
/// privatizable region; the rest are ordinary shared registers.
#[derive(Clone, Copy, Debug)]
pub struct MixCfg {
    pub nregs: usize,
    /// Reads+writes per transaction.
    pub txn_len: usize,
    /// Percentage of operations that are writes.
    pub write_pct: u32,
    /// Transactions per thread.
    pub txns_per_thread: u64,
    /// Every k transactions, run a privatize → direct work → publish episode
    /// (0 = never). Selective fencing fences exactly here.
    pub privatize_every: u64,
    /// Direct operations per private phase.
    pub direct_ops: usize,
}

/// Named workload shapes used across E15 reports and benches.
pub fn standard_workloads() -> Vec<(&'static str, MixCfg)> {
    vec![
        (
            "short-readmostly",
            MixCfg {
                nregs: 1024,
                txn_len: 4,
                write_pct: 10,
                txns_per_thread: 20_000,
                privatize_every: 64,
                direct_ops: 8,
            },
        ),
        (
            "short-writeheavy",
            MixCfg {
                nregs: 1024,
                txn_len: 4,
                write_pct: 80,
                txns_per_thread: 20_000,
                privatize_every: 64,
                direct_ops: 8,
            },
        ),
        (
            "long-readmostly",
            MixCfg {
                nregs: 4096,
                txn_len: 32,
                write_pct: 10,
                txns_per_thread: 5_000,
                privatize_every: 64,
                direct_ops: 16,
            },
        ),
        (
            "long-writeheavy",
            MixCfg {
                nregs: 4096,
                txn_len: 32,
                write_pct: 50,
                txns_per_thread: 5_000,
                privatize_every: 64,
                direct_ops: 16,
            },
        ),
        (
            "contended",
            MixCfg {
                nregs: 32,
                txn_len: 8,
                write_pct: 50,
                txns_per_thread: 10_000,
                privatize_every: 32,
                direct_ops: 4,
            },
        ),
    ]
}

/// Run the mix on one handle. `scratch` is a register private to this
/// thread, used as the privatized object (flag and data in one), so the
/// fenced workload is DRF: transactions of other threads never touch it.
/// Values are kept nonzero; op sequences are derived deterministically from
/// the per-transaction seed so retries replay the same accesses.
pub fn mix_worker<H: StmHandle>(
    h: &mut H,
    cfg: &MixCfg,
    scratch: usize,
    seed: u64,
    policy: FencePolicy,
) {
    let mut s = seed | 1;
    let mut ops: Vec<(usize, Option<u64>)> = Vec::with_capacity(cfg.txn_len);
    for i in 0..cfg.txns_per_thread {
        ops.clear();
        for _ in 0..cfg.txn_len {
            s = lcg(s);
            let x = (s >> 33) as usize % cfg.nregs;
            let is_write = (s >> 8) % 100 < u64::from(cfg.write_pct);
            ops.push((x, is_write.then_some(s | 1)));
        }
        let ops_ref = &ops;
        h.atomic(|tx| {
            let mut acc = 0u64;
            for &(x, w) in ops_ref {
                match w {
                    Some(v) => tx.write(x, v)?,
                    None => acc = acc.wrapping_add(tx.read(x)?),
                }
            }
            Ok(acc)
        });
        if policy == FencePolicy::AfterEvery {
            h.fence();
        }
        // Privatization episode: selective fencing pays exactly here.
        if cfg.privatize_every != 0 && (i + 1) % cfg.privatize_every == 0 {
            h.atomic(|tx| tx.write(scratch, 1));
            if policy != FencePolicy::None {
                h.fence();
            }
            for _ in 0..cfg.direct_ops {
                s = lcg(s);
                h.write_direct(scratch, s | 1);
                let _ = h.read_direct(scratch);
            }
            h.atomic(|tx| tx.write(scratch, 2));
            if policy == FencePolicy::AfterEvery {
                h.fence();
            }
        }
    }
}

/// Measure mix throughput (transactions/second) across `threads` threads.
/// `threads` extra registers serve as per-thread privatized objects.
pub fn mix_throughput(kind: StmKind, threads: usize, cfg: &MixCfg, policy: FencePolicy) -> f64 {
    let total_regs = cfg.nregs + threads;
    macro_rules! run {
        ($stm:expr) => {{
            let stm = $stm;
            std::thread::scope(|sc| {
                for t in 0..threads {
                    let stm = stm.clone();
                    let cfg = *cfg;
                    sc.spawn(move || {
                        let mut h = stm.handle(t);
                        let scratch = cfg.nregs + t;
                        mix_worker(&mut h, &cfg, scratch, (t as u64 + 1) * 0x9E37_79B9, policy);
                    });
                }
            });
        }};
    }
    let start = Instant::now();
    match kind {
        StmKind::Tl2 => run!(Tl2Stm::new(total_regs, threads)),
        StmKind::Tl2Striped { stripes } => {
            run!(Tl2Stm::with_config(
                StmConfig::new(total_regs, threads).striped(stripes)
            ))
        }
        StmKind::Norec => run!(NorecStm::new(total_regs, threads)),
        StmKind::Glock => run!(GlockStm::new(total_regs, threads)),
    }
    let total = (threads as u64 * cfg.txns_per_thread) as f64;
    total / start.elapsed().as_secs_f64()
}

/// A deliberately contended workload for the backoff experiments: `threads`
/// threads each increment one shared register `incs_per_thread` times on a
/// TL2 instance with the given backoff tuning. Returns (commits/sec, merged
/// per-handle [`Stats`] — whose `retries`/`backoff_ns` are the measurement).
pub fn contended_counter(
    threads: usize,
    incs_per_thread: u64,
    backoff: BackoffCfg,
) -> (f64, Stats) {
    let stm = Tl2Stm::with_config(StmConfig::new(1, threads).backoff(backoff));
    let start = Instant::now();
    let stats = std::thread::scope(|sc| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let stm = stm.clone();
                sc.spawn(move || {
                    let mut h = stm.handle(t);
                    for _ in 0..incs_per_thread {
                        h.atomic(|tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        });
                    }
                    h.stats()
                })
            })
            .collect();
        let mut total = Stats::default();
        for w in workers {
            total.merge(&w.join().unwrap());
        }
        total
    });
    let tput = (threads as u64 * incs_per_thread) as f64 / start.elapsed().as_secs_f64();
    (tput, stats)
}

/// A privatization-phase workload (E16): one owner cycles
/// privatize → (fence?) → direct work → publish, while workers run guarded
/// transactions on the shared region.
#[derive(Clone, Copy, Debug)]
pub struct PrivCfg {
    pub data_regs: usize,
    /// Direct (non-transactional) operations per private phase.
    pub direct_ops: usize,
    pub rounds: u64,
    /// Guarded transactions per worker per round (approximate pacing).
    pub worker_txns: u64,
}

/// Run the privatization workload and return (owner rounds/sec, lost
/// updates). `use_fence=false` is only safe for NOrec/Glock.
pub fn privatization_throughput(
    kind: StmKind,
    workers: usize,
    cfg: &PrivCfg,
    use_fence: bool,
) -> (f64, u64) {
    const FLAG: usize = 0;
    let nregs = 1 + cfg.data_regs;
    let threads = workers + 1;
    let start = Instant::now();

    macro_rules! run {
        ($stm:expr) => {{
            let stm = $stm;
            let mut lost_local = 0u64;
            std::thread::scope(|sc| {
                let owner_stm = stm.clone();
                let cfg = *cfg;
                let owner = sc.spawn(move || {
                    let mut h = owner_stm.handle(0);
                    let mut lost = 0u64;
                    for round in 1..=cfg.rounds {
                        h.atomic(|tx| tx.write(FLAG, 1));
                        if use_fence {
                            h.fence();
                        }
                        let mut s = round;
                        for k in 0..cfg.direct_ops {
                            s = lcg(s);
                            let x = 1 + (s as usize % cfg.data_regs);
                            let marker = (round << 20) | k as u64 | 0x4000_0000_0000_0000;
                            h.write_direct(x, marker);
                            if h.read_direct(x) != marker {
                                lost += 1;
                            }
                        }
                        h.atomic(|tx| tx.write(FLAG, 2));
                    }
                    lost
                });
                for w in 0..workers {
                    let stm = stm.clone();
                    sc.spawn(move || {
                        let mut h = stm.handle(1 + w);
                        let mut s = w as u64 + 7;
                        for _ in 0..cfg.rounds * cfg.worker_txns {
                            s = lcg(s);
                            let x = 1 + (s as usize % cfg.data_regs);
                            h.atomic(|tx| {
                                let flag = tx.read(FLAG)?;
                                if flag != 1 {
                                    let v = tx.read(x)?;
                                    tx.write(x, v.wrapping_add(s) | 1)?;
                                }
                                Ok(())
                            });
                        }
                    });
                }
                lost_local = owner.join().unwrap();
            });
            lost_local
        }};
    }

    let lost: u64 = match kind {
        StmKind::Tl2 => run!(Tl2Stm::new(nregs, threads)),
        StmKind::Tl2Striped { stripes } => {
            run!(Tl2Stm::with_config(
                StmConfig::new(nregs, threads).striped(stripes)
            ))
        }
        StmKind::Norec => run!(NorecStm::new(nregs, threads)),
        StmKind::Glock => run!(GlockStm::new(nregs, threads)),
    };
    let rps = cfg.rounds as f64 / start.elapsed().as_secs_f64();
    (rps, lost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_mix() -> MixCfg {
        MixCfg {
            nregs: 64,
            txn_len: 4,
            write_pct: 50,
            txns_per_thread: 200,
            privatize_every: 16,
            direct_ops: 4,
        }
    }

    #[test]
    fn mix_runs_on_all_stms() {
        for kind in StmKind::ALL {
            let tput = mix_throughput(kind, 2, &tiny_mix(), FencePolicy::Selective);
            assert!(tput > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn fence_all_policy_runs() {
        let tput = mix_throughput(StmKind::Tl2, 2, &tiny_mix(), FencePolicy::AfterEvery);
        assert!(tput > 0.0);
    }

    #[test]
    fn striped_kind_runs_and_is_labeled() {
        let kind = StmKind::Tl2Striped { stripes: 16 };
        assert_eq!(kind.label(), "tl2-striped16");
        let tput = mix_throughput(kind, 2, &tiny_mix(), FencePolicy::Selective);
        assert!(tput > 0.0);
        let cfg = PrivCfg {
            data_regs: 8,
            direct_ops: 8,
            rounds: 100,
            worker_txns: 2,
        };
        let (rps, lost) = privatization_throughput(kind, 2, &cfg, true);
        assert!(rps > 0.0);
        assert_eq!(lost, 0, "fenced striped TL2 must not lose updates");
    }

    #[test]
    fn contended_counter_reports_backoff_stats() {
        let (tput, stats) = contended_counter(2, 500, BackoffCfg::default());
        assert!(tput > 0.0);
        assert_eq!(stats.commits, 1000);
        // retries/backoff_ns may be zero on an uncontended (single-core)
        // run; they must at least be consistent.
        assert_eq!(stats.retries, stats.aborts_total());
    }

    #[test]
    fn privatization_with_fence_loses_nothing() {
        let cfg = PrivCfg {
            data_regs: 8,
            direct_ops: 16,
            rounds: 300,
            worker_txns: 2,
        };
        let (rps, lost) = privatization_throughput(StmKind::Tl2, 2, &cfg, true);
        assert!(rps > 0.0);
        assert_eq!(lost, 0, "fenced TL2 privatization must not lose updates");
        let (_, lost) = privatization_throughput(StmKind::Norec, 2, &cfg, false);
        assert_eq!(lost, 0, "NOrec without fences must not lose updates");
        let (_, lost) = privatization_throughput(StmKind::Glock, 2, &cfg, false);
        assert_eq!(lost, 0, "glock without fences must not lose updates");
    }
}
