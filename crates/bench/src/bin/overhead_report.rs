//! E15 — the fence-overhead table (the Yoo et al. shape cited in Sec 1):
//! throughput of each STAMP-like workload under three fence policies, with
//! the overhead of conservative fencing relative to selective fencing.
//!
//! Usage: `overhead_report [threads]` (default: 4)
//!
//! With `--json`, instead measures the version-clock matrix
//! (backend × clock × threads on the disjoint-write workload), the fence
//! matrix (driver mode × privatizers on the batched-fence workload), the
//! stripe matrix (storage policy × threads × register-file size on the
//! stripe-churn workload), the governor matrix (auto vs static
//! configurations on the phase-shift workload), and the typed-frontend
//! matrix (blocking vs spinning retry on the bounded-queue handoff), and
//! the service matrix (the end-to-end sharded-KV fleet with per-op-class
//! latency tails), writing them to `BENCH_clocks.json`,
//! `BENCH_fences.json`, `BENCH_stripes.json`, `BENCH_governor.json`,
//! `BENCH_tvar.json`, and `BENCH_service.json` — the machine-readable
//! perf trajectories later PRs diff against.
//! `overhead_report --json [txns_per_thread]`.

use tm_bench::{
    clock_matrix, fence_matrix, governor_matrix, mix_throughput, render_clock_report_json,
    render_fence_report_json, render_governor_report_json, render_service_report_json,
    render_stripe_report_json, render_tvar_report_json, service_matrix, standard_workloads,
    stripe_matrix, tvar_matrix, FencePolicy, StmKind,
};

fn clock_json_report(txns_per_thread: u64) {
    let threads_axis = [1usize, 2, 4];
    eprintln!(
        "measuring clock matrix (2 backends x 3 clocks x {:?} threads, {txns_per_thread} txns/thread)…",
        threads_axis
    );
    let rows = clock_matrix(&threads_axis, txns_per_thread);
    let json = render_clock_report_json(&rows, txns_per_thread);
    let path = "BENCH_clocks.json";
    std::fs::write(path, &json).expect("write BENCH_clocks.json");
    println!("{json}");
    eprintln!("wrote {path} ({} rows)", rows.len());
}

fn fence_json_report(rounds: u64) {
    let privatizers_axis = [1usize, 4, 16];
    eprintln!(
        "measuring fence matrix (2 driver modes x {:?} privatizers, {rounds} rounds)…",
        privatizers_axis
    );
    let rows = fence_matrix(&privatizers_axis, rounds);
    let json = render_fence_report_json(&rows, rounds);
    let path = "BENCH_fences.json";
    std::fs::write(path, &json).expect("write BENCH_fences.json");
    println!("{json}");
    eprintln!("wrote {path} ({} rows)", rows.len());
}

fn stripe_json_report(txns_per_thread: u64) {
    let threads_axis = [1usize, 2, 4];
    let nregs_axis = [1usize << 10, 1 << 14];
    eprintln!(
        "measuring stripe matrix (3 policies x {threads_axis:?} threads x {nregs_axis:?} regs, \
         {txns_per_thread} txns/thread)…"
    );
    let rows = stripe_matrix(&threads_axis, &nregs_axis, txns_per_thread);
    let json = render_stripe_report_json(&rows, txns_per_thread);
    let path = "BENCH_stripes.json";
    std::fs::write(path, &json).expect("write BENCH_stripes.json");
    println!("{json}");
    eprintln!("wrote {path} ({} rows)", rows.len());
}

fn governor_json_report(txns_per_phase: u64) {
    let (threads, nregs) = (2usize, 1024usize);
    eprintln!(
        "measuring governor matrix (auto cold+converged vs 3 static clocks x 2 phases, \
         best of 3, {threads} threads, {nregs} regs, {txns_per_phase} txns/phase)…"
    );
    // Best-of-3 per cell: single-run wall-clock on a small shared host is
    // noisy, but the governor's *activity* (resizes, switches) is
    // deterministic — take the max throughput observed per cell.
    let mut best: Vec<tm_bench::GovernorBenchRow> = Vec::new();
    for _ in 0..3 {
        let rows = governor_matrix(threads, nregs, txns_per_phase);
        if best.is_empty() {
            best = rows;
        } else {
            for (b, r) in best.iter_mut().zip(rows) {
                b.commits_per_sec = b.commits_per_sec.max(r.commits_per_sec);
                b.resizes = b.resizes.max(r.resizes);
                b.clock_switches = b.clock_switches.max(r.clock_switches);
            }
        }
    }
    let json = render_governor_report_json(&best, txns_per_phase);
    let path = "BENCH_governor.json";
    std::fs::write(path, &json).expect("write BENCH_governor.json");
    println!("{json}");
    eprintln!("wrote {path} ({} rows)", best.len());
}

fn tvar_json_report(items: u64) {
    eprintln!(
        "measuring typed-frontend matrix (blocking vs spin retry, \
         {items}-item bounded-queue handoff)…"
    );
    let rows = tvar_matrix(items);
    let json = render_tvar_report_json(&rows, items);
    let path = "BENCH_tvar.json";
    std::fs::write(path, &json).expect("write BENCH_tvar.json");
    println!("{json}");
    eprintln!("wrote {path} ({} rows)", rows.len());
}

fn service_json_report(ops_per_client: u64) {
    let cfg = tm_service::ServiceCfg {
        ops_per_client,
        ..tm_service::ServiceCfg::full()
    };
    eprintln!(
        "measuring service matrix ({} shards x {} keys, {} clients x {ops_per_client} ops, \
         zipf theta {:.2})…",
        cfg.shards, cfg.keys_per_shard, cfg.clients, cfg.theta
    );
    let (report, rows) = service_matrix(ops_per_client);
    let json = render_service_report_json(&report, &rows, &cfg);
    let path = "BENCH_service.json";
    std::fs::write(path, &json).expect("write BENCH_service.json");
    println!("{json}");
    eprintln!(
        "wrote {path} ({} rows, {} snapshots, {} scan anomalies)",
        rows.len(),
        report.snapshots,
        report.scan_anomalies
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--json") {
        let txns = args
            .iter()
            .filter(|a| *a != "--json")
            .find_map(|a| a.parse().ok())
            .unwrap_or(5_000);
        clock_json_report(txns);
        fence_json_report(txns);
        stripe_json_report(txns);
        // The governor needs enough commits per phase to cross several
        // fold and table windows — and long enough measurement windows to
        // rise above timer noise — whatever smoke count CI passed.
        governor_json_report(txns.max(20_000));
        tvar_json_report(txns);
        service_json_report(txns);
        return;
    }

    // Default to 4 threads even on small machines: fence overhead is about
    // waiting for concurrent transactions, which needs concurrency (possibly
    // oversubscribed) to exist at all.
    let threads: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("Fence overhead report — TL2, {threads} threads");
    println!("(throughput in committed txns/sec; overhead vs selective fencing)\n");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "workload", "no-fence", "selective", "fence-all", "ovh-sel%", "ovh-all%"
    );
    println!("{}", "-".repeat(80));

    let mut overheads = Vec::new();
    for (name, cfg) in standard_workloads() {
        let t_none = mix_throughput(StmKind::Tl2, threads, &cfg, FencePolicy::None);
        let t_sel = mix_throughput(StmKind::Tl2, threads, &cfg, FencePolicy::Selective);
        let t_all = mix_throughput(StmKind::Tl2, threads, &cfg, FencePolicy::AfterEvery);
        let ovh_sel = (t_none / t_sel - 1.0) * 100.0;
        let ovh_all = (t_sel / t_all - 1.0) * 100.0;
        overheads.push(ovh_all);
        println!(
            "{name:<18} {t_none:>12.0} {t_sel:>12.0} {t_all:>12.0} {ovh_sel:>9.1}% {ovh_all:>9.1}%"
        );
    }
    let avg = overheads.iter().sum::<f64>() / overheads.len() as f64;
    let worst = overheads.iter().cloned().fold(f64::MIN, f64::max);
    println!("{}", "-".repeat(80));
    println!("fence-after-every-transaction overhead: average {avg:.1}%, worst case {worst:.1}%");
    println!(
        "(paper Sec 1 cites Yoo et al. [42]: 32% average, 107% worst case on STAMP;\n\
         the expected *shape* is conservative ≫ selective ≈ none, worst ≈ 2x)"
    );
}
