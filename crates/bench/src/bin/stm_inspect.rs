//! stm_inspect — render the runtime's own explanation of a live run.
//!
//! Drives the conformance-style phase-shift workload (a write-heavy
//! privatizing phase, then a read-only phase) on a fully governed TL2
//! instance (`StmConfig::auto`: adaptive stripes + auto clock) under BOTH
//! driver modes, then renders what the telemetry subsystem recorded:
//! latency distributions (count, p50/p90/p99/p999, sparkline) for commit /
//! abort-gap / fence-wait / grace-scan, the background driver's duty
//! cycle, and the last governor decisions *with the counters that
//! justified them* straight from the flight recorder.
//!
//! Usage: `stm_inspect [txns_per_phase]` (default: 2048)
//!
//! With `--json`, additionally writes the background-mode snapshot as
//! `BENCH_telemetry.json` (schema `bench_telemetry/v1`) and prints it to
//! stdout; the human report moves to stderr.

use std::time::Duration;
use tm_stm::prelude::*;
use tm_stm::runtime::DriverMode;
use tm_stm::telemetry::LatencyHistogram;
use tm_stm::tl2::GOVERNOR_WINDOW;

/// How many trailing governor decisions the report shows.
const LAST_N: usize = 10;

fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Unicode sparkline over the histogram's occupied bucket range.
fn sparkline(h: &LatencyHistogram) -> String {
    const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let buckets = h.buckets();
    let occupied: Vec<usize> = (0..buckets.len()).filter(|&i| buckets[i] > 0).collect();
    let (Some(&lo), Some(&hi)) = (occupied.first(), occupied.last()) else {
        return "(empty)".into();
    };
    let peak = buckets[lo..=hi].iter().copied().max().unwrap_or(1).max(1);
    let bars: String = buckets[lo..=hi]
        .iter()
        .map(|&c| {
            if c == 0 {
                ' '
            } else {
                RAMP[((c * (RAMP.len() as u64 - 1)).div_ceil(peak)) as usize]
            }
        })
        .collect();
    format!(
        "[{}..{}] {bars}",
        fmt_ns(if lo == 0 { 0 } else { 1 << lo }),
        fmt_ns(LatencyHistogram::bucket_upper_edge(hi)),
    )
}

/// The conformance-style phase-shift workload: a write-heavy phase with
/// periodic privatizing fences (drives the governor toward GV5 and feeds
/// the fence/grace histograms), then a read-only phase (drives it back to
/// GV1). Two worker threads over overlapping registers.
fn run_workload(stm: &Tl2Stm, txns_per_phase: u64) {
    const NREGS: u64 = 1024;
    std::thread::scope(|scope| {
        for slot in 0..2usize {
            let mut h = stm.handle(slot);
            scope.spawn(move || {
                // Phase 1: write-heavy, fence every 256 commits.
                for i in 0..txns_per_phase {
                    let r = ((i * 7 + slot as u64) % NREGS) as usize;
                    h.atomic(|tx| {
                        let v = tx.read(r)?;
                        tx.write(r, v + 1)
                    });
                    if (i + 1) % 256 == 0 {
                        h.fence();
                    }
                }
                // Phase 2: read-only.
                for i in 0..txns_per_phase {
                    let r = ((i * 11 + slot as u64) % NREGS) as usize;
                    h.atomic(|tx| tx.read(r));
                }
            });
        }
    });
    // Let open reconfigurations (clock handoffs, stripe migrations) settle
    // so the settle/retire events land in the rings too.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while stm.clock_handoff_pending() && std::time::Instant::now() < deadline {
        let mut h = stm.handle(0);
        h.atomic(|tx| tx.read(0));
        std::thread::yield_now();
    }
}

fn render(out: &mut impl std::io::Write, snap: &TelemetrySnapshot) -> std::io::Result<()> {
    let mode = snap.driver_mode.unwrap_or("?");
    writeln!(out, "== driver mode: {mode} ==")?;
    match snap.driver_idle_wakeups {
        Some(idle) => writeln!(out, "driver duty: {idle} idle wakeups")?,
        None => writeln!(out, "driver duty: (no background driver)")?,
    }
    writeln!(
        out,
        "flight recorder: {} events captured, {} overwritten (capacity {}/slot)",
        snap.events.len(),
        snap.dropped,
        snap.capacity
    )?;
    writeln!(
        out,
        "\n{:<11} {:>8} {:>9} {:>9} {:>9} {:>9}  distribution",
        "latency", "count", "p50", "p90", "p99", "p999"
    )?;
    for class in LatencyClass::ALL {
        let h = snap.hists.get(class);
        let q = h.quantiles();
        writeln!(
            out,
            "{:<11} {:>8} {:>9} {:>9} {:>9} {:>9}  {}",
            class.label(),
            h.count(),
            fmt_ns(q.p50),
            fmt_ns(q.p90),
            fmt_ns(q.p99),
            fmt_ns(q.p999),
            sparkline(h),
        )?;
    }
    let decisions: Vec<_> = snap.governor_decisions().collect();
    writeln!(
        out,
        "\ngovernor decisions ({} total, last {}):",
        decisions.len(),
        decisions.len().min(LAST_N)
    )?;
    for e in decisions.iter().rev().take(LAST_N).rev() {
        let fields: Vec<String> = e
            .kind
            .fields()
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        writeln!(
            out,
            "  t+{:<10} slot {:<2} {:<21} {}",
            fmt_ns(e.at_ns),
            e.slot,
            e.kind.label(),
            fields.join(" ")
        )?;
    }
    if decisions.is_empty() {
        writeln!(out, "  (none recorded)")?;
    }
    writeln!(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let txns_per_phase: u64 = args
        .iter()
        .filter(|a| *a != "--json")
        .find_map(|a| a.parse().ok())
        .unwrap_or(16 * GOVERNOR_WINDOW);

    let mut background_json = None;
    for mode in DriverMode::ALL {
        eprintln!(
            "running phase-shift workload ({} txns/phase, 2 threads, {})…",
            txns_per_phase,
            mode.label()
        );
        let stm = Tl2Stm::with_config(
            StmConfig::auto(1024, 2)
                .chaos_off()
                .grace_driver(mode)
                .trace(TraceConfig::with_capacity(4096)),
        );
        run_workload(&stm, txns_per_phase);
        let snap = stm.telemetry_snapshot();
        if mode == DriverMode::Background {
            background_json = Some(snap.to_json());
        }
        if json {
            render(&mut std::io::stderr(), &snap).expect("render to stderr");
        } else {
            render(&mut std::io::stdout().lock(), &snap).expect("render to stdout");
        }
    }
    if json {
        let payload = background_json.expect("background mode always runs");
        let path = "BENCH_telemetry.json";
        std::fs::write(path, &payload).expect("write BENCH_telemetry.json");
        println!("{payload}");
        eprintln!("wrote {path}");
    }
}
