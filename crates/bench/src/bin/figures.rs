//! Regenerate the paper's figure-level results (E1–E6, E14): for each litmus
//! program, the DRF verdict under strong atomicity and the postcondition /
//! divergence verdict under every TM configuration.
//!
//! Usage:
//!   figures                # the full matrix
//!   figures fig1a          # only litmus tests whose name contains "fig1a"

use tm_lang::explorer::Limits;
use tm_lang::prelude::ImplicitFence;
use tm_litmus::{check_drf_atomic, programs, run, Divergence, TmKind};

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let limits = Limits::default();
    let tms = [
        TmKind::Atomic {
            spurious_aborts: true,
        },
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::None,
        },
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::AfterEvery,
        },
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::SkipReadOnly,
        },
        TmKind::UndoEager,
        TmKind::Glock,
    ];

    println!("Safe Privatization in TM — litmus verdict matrix");
    println!("(ok = postcondition holds on all explored outcomes; DIV = divergence,");
    println!(" i.e. the doomed-transaction symptom; VIOL(n) = n violating outcomes)\n");

    print!("{:<18} {:>5} ", "litmus", "DRF");
    for tm in &tms {
        print!("{:>14} ", tm.label());
    }
    println!();
    println!("{}", "-".repeat(18 + 7 + 15 * tms.len()));

    for l in programs::all() {
        if !l.name.contains(&filter) {
            continue;
        }
        let drf = check_drf_atomic(&l, &limits);
        print!(
            "{:<18} {:>5} ",
            l.name,
            if drf.drf { "yes" } else { "RACY" }
        );
        for tm in &tms {
            let r = run(&l, *tm, &limits);
            let cell = if r.violations > 0 {
                format!("VIOL({})", r.violations)
            } else if r.diverged && l.divergence == Divergence::Forbidden {
                "DIV".to_string()
            } else {
                "ok".to_string()
            };
            print!("{cell:>14} ");
        }
        println!();
    }

    println!();
    println!("Expected (paper): fig1a/fig1b/pmp unfenced are racy and fail under");
    println!("plain TL2 (delayed commit / doomed transaction); their fenced variants");
    println!("are DRF and safe everywhere (Theorem 5.3). fig2/fig6 are DRF as");
    println!("written. fig3 is racy and unfixable by fences. gccbug_unfenced is");
    println!("protected by tl2+qall (quiesce after every txn) but NOT by tl2+qbug");
    println!("(quiescence elided after read-only transactions — the GCC bug [43]).");
}
