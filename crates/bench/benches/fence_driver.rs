//! fence_driver — the background grace-period driver vs cooperative
//! driving, across 1/4/16 concurrent privatizers.
//!
//! Two shapes per (mode, N):
//!
//! * `batched` — issue N tickets and join them immediately (`fence_all`):
//!   measures pure fence cost; the driver must not *hurt* here (it may
//!   close periods eagerly, but coalescing must keep scans ≤ tickets).
//! * `overlap` — issue N tickets, do per-privatizer post-fence work, then
//!   join: the driver's reason to exist — it retires the period while
//!   every privatizer overlaps, so the joins find the fence already
//!   resolved instead of paying the scan themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_stm::prelude::*;

fn stm_with(mode: DriverMode, n: usize) -> Tl2Stm {
    Tl2Stm::with_config(StmConfig::new(16, n).grace_driver(mode).chaos_off())
}

fn fence_driver(c: &mut Criterion) {
    let mut g = c.benchmark_group("fence_driver");
    g.sample_size(10);
    for mode in DriverMode::ALL {
        for &n in &[1usize, 4, 16] {
            g.throughput(Throughput::Elements(n as u64));
            g.bench_with_input(
                BenchmarkId::new(format!("batched/{}", mode.label()), n),
                &n,
                |b, &n| {
                    let stm = stm_with(mode, n);
                    let mut handles: Vec<_> = (0..n).map(|t| stm.handle(t)).collect();
                    b.iter(|| fence_all(handles.iter_mut()));
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("overlap/{}", mode.label()), n),
                &n,
                |b, &n| {
                    let stm = stm_with(mode, n);
                    let mut handles: Vec<_> = (0..n).map(|t| stm.handle(t)).collect();
                    b.iter(|| {
                        let mut tickets: Vec<FenceTicket> =
                            handles.iter_mut().map(|h| h.fence_async()).collect();
                        // Overlapped post-privatization work (non-TM).
                        let mut acc = 0u64;
                        for i in 0..512u64 {
                            acc = acc.wrapping_mul(0x9E37_79B9).wrapping_add(i);
                        }
                        std::hint::black_box(acc);
                        for (h, t) in handles.iter_mut().zip(tickets.drain(..)) {
                            h.fence_join(t);
                        }
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, fence_driver);
criterion_main!(benches);
