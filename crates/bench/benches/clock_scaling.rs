//! E20 — version-clock scaling: TL2 throughput under GV1 (`fetch_add`),
//! GV4 (CAS-with-adopt), and GV5 (slot-local deltas) on the disjoint-write
//! workload, where the global clock is the *only* shared metadata.
//!
//! Expected shape: at 1 thread the clocks tie (no contention to shed); as
//! threads grow, GV1 serializes every commit on one cache line while GV5
//! never touches it (`clock_bumps == 0`), so the gap is the measured cost
//! of clock serialization. A read-mostly mix rides along to show GV5's
//! trailing-reader refresh does not erase the win.
//!
//! Reproduce with: `cargo bench -p tm-bench --bench clock_scaling`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_bench::{disjoint_write_throughput, mix_throughput, FencePolicy, MixCfg, StmKind};
use tm_stm::prelude::ClockKind;

fn clock_scaling(c: &mut Criterion) {
    let txns_per_thread = 2_000u64;

    let mut g = c.benchmark_group("clock_scaling/disjoint-write");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.throughput(Throughput::Elements(threads as u64 * txns_per_thread));
        for clock in ClockKind::ALL {
            g.bench_with_input(
                BenchmarkId::new(clock.label(), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| disjoint_write_throughput(clock, None, threads, txns_per_thread));
                },
            );
        }
    }
    g.finish();

    let cfg = MixCfg {
        nregs: 2048,
        txn_len: 8,
        write_pct: 10,
        txns_per_thread,
        privatize_every: 0,
        direct_ops: 0,
    };
    let mut g = c.benchmark_group("clock_scaling/readmostly");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.throughput(Throughput::Elements(threads as u64 * cfg.txns_per_thread));
        for kind in StmKind::TL2_CLOCKS {
            g.bench_with_input(
                BenchmarkId::new(kind.label(), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| mix_throughput(kind, threads, &cfg, FencePolicy::None));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, clock_scaling);
criterion_main!(benches);
