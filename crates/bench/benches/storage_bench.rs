//! E18 — orec storage backends: TL2 throughput with per-register ownership
//! records vs striped orec tables at several stripe counts, on small and
//! large register files.
//!
//! Expected shape: on large register files with low contention, striping is
//! competitive while using constant lock metadata; as the stripe count
//! shrinks toward the write-set size, false conflicts start to bite.
//!
//! Reproduce with: `cargo bench -p tm-bench --bench storage_bench`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_bench::{mix_throughput, FencePolicy, MixCfg, StmKind};

fn storage_backends(c: &mut Criterion) {
    let threads = 2;
    let shapes = [
        (
            "small-writeheavy",
            MixCfg {
                nregs: 1024,
                txn_len: 8,
                write_pct: 50,
                txns_per_thread: 2_000,
                privatize_every: 0,
                direct_ops: 0,
            },
        ),
        (
            "large-readmostly",
            MixCfg {
                nregs: 1 << 16,
                txn_len: 8,
                write_pct: 10,
                txns_per_thread: 2_000,
                privatize_every: 0,
                direct_ops: 0,
            },
        ),
    ];
    // Per-register vs striped at ≥ 2 stripe counts (the acceptance axis):
    // a small table (false conflicts likely) and a large one.
    let backends = [
        StmKind::Tl2,
        StmKind::Tl2Striped { stripes: 64 },
        StmKind::Tl2Striped { stripes: 4096 },
    ];
    for (shape, cfg) in shapes {
        let mut g = c.benchmark_group(format!("storage/{shape}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(threads as u64 * cfg.txns_per_thread));
        for kind in backends {
            g.bench_with_input(
                BenchmarkId::new(kind.label(), threads),
                &kind,
                |b, &kind| {
                    b.iter(|| mix_throughput(kind, threads, &cfg, FencePolicy::None));
                },
            );
        }
        g.finish();
    }
}

criterion_group!(benches, storage_backends);
criterion_main!(benches);
