//! E16 — STM comparison: TL2 (under each version clock) vs NOrec vs global
//! lock, throughput scaling with thread count on read-mostly and
//! write-heavy mixes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_bench::{mix_throughput, FencePolicy, MixCfg, StmKind};

fn stm_compare(c: &mut Criterion) {
    let max_threads = 4; // fixed: relative shapes matter, not absolute scaling
    let shapes = [
        (
            "readmostly",
            MixCfg {
                nregs: 2048,
                txn_len: 8,
                write_pct: 10,
                txns_per_thread: 2_000,
                privatize_every: 0,
                direct_ops: 0,
            },
        ),
        (
            "writeheavy",
            MixCfg {
                nregs: 2048,
                txn_len: 8,
                write_pct: 80,
                txns_per_thread: 2_000,
                privatize_every: 0,
                direct_ops: 0,
            },
        ),
    ];
    // The clock dimension: TL2 under every version clock joins NOrec and
    // Glock (plain `tl2` is the GV1 baseline).
    let kinds: Vec<StmKind> = StmKind::TL2_CLOCKS
        .into_iter()
        .chain([StmKind::Norec, StmKind::Glock])
        .collect();
    for (shape, cfg) in shapes {
        let mut g = c.benchmark_group(format!("stm_compare/{shape}"));
        g.sample_size(10);
        for threads in [1usize, 2, 4].into_iter().filter(|&t| t <= max_threads) {
            g.throughput(Throughput::Elements(threads as u64 * cfg.txns_per_thread));
            for &kind in &kinds {
                g.bench_with_input(
                    BenchmarkId::new(kind.label(), threads),
                    &threads,
                    |b, &threads| {
                        b.iter(|| mix_throughput(kind, threads, &cfg, FencePolicy::None));
                    },
                );
            }
        }
        g.finish();
    }
}

criterion_group!(benches, stm_compare);
criterion_main!(benches);
