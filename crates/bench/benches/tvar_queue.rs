//! E23 — the typed frontend: a bounded producer/consumer queue over a
//! `TVar<VecDeque<u64>>`, handed off item by item under each retry
//! strategy. `blocking` sleeps on the read set and is woken by the other
//! side's conflicting commit; `spin` reruns with backoff. Every committed
//! queue replacement retires the displaced value box through the grace
//! engine, so the workload also measures the typed layer's epoch-based
//! reclamation under sustained traffic (`BENCH_tvar.json`, written by
//! `overhead_report --json`, records throughput and the EBR batching
//! factor).
//!
//! Reproduce with: `cargo bench -p tm-bench --bench tvar_queue`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_bench::{retry_strategy_label, tvar_queue_throughput};
use tm_stm::prelude::RetryStrategy;

fn tvar_queue(c: &mut Criterion) {
    let items = 2_000u64;
    let mut g = c.benchmark_group("tvar/bounded-queue");
    g.sample_size(10);
    g.throughput(Throughput::Elements(items));
    for strategy in [RetryStrategy::Block, RetryStrategy::Spin] {
        g.bench_with_input(
            BenchmarkId::new(retry_strategy_label(strategy), items),
            &strategy,
            |b, &strategy| {
                b.iter(|| tvar_queue_throughput(strategy, items));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, tvar_queue);
criterion_main!(benches);
