//! E15b — fence latency scaling: the cost of one transactional fence as a
//! function of the number of threads running transactions concurrently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tm_bench::lcg;
use tm_stm::prelude::*;

fn fence_scaling(c: &mut Criterion) {
    let max_bg = 3; // fixed: fence latency vs number of active transactions
    let mut g = c.benchmark_group("fence_latency");
    g.sample_size(20);
    for bg in [0usize, 1, 2, max_bg].into_iter().filter(|&b| b <= max_bg) {
        g.bench_with_input(BenchmarkId::new("active_threads", bg), &bg, |b, &bg| {
            let stm = Tl2Stm::with_config(StmConfig::new(256, bg + 1).chaos_off());
            let stop = Arc::new(AtomicBool::new(false));
            let mut workers = Vec::new();
            for t in 0..bg {
                let stm = stm.clone();
                let stop = Arc::clone(&stop);
                workers.push(std::thread::spawn(move || {
                    let mut h = stm.handle(1 + t);
                    let mut s = t as u64 + 1;
                    while !stop.load(Ordering::Relaxed) {
                        s = lcg(s);
                        let x = (s >> 33) as usize % 256;
                        h.atomic(|tx| {
                            let v = tx.read(x)?;
                            tx.write(x, v.wrapping_add(1) | 1)
                        });
                    }
                }));
            }
            let mut h = stm.handle(0);
            b.iter(|| h.fence());
            stop.store(true, Ordering::Relaxed);
            for w in workers {
                w.join().unwrap();
            }
        });
    }
    g.finish();
}

criterion_group!(benches, fence_scaling);
criterion_main!(benches);
