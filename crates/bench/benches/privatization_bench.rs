//! E16 (privatization) — privatization-heavy workload: TL2 with fences vs
//! NOrec (privatization-safe without fences) vs global lock, varying the
//! number of concurrent worker threads the fence must wait for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_bench::{privatization_throughput, PrivCfg, StmKind};

fn privatization(c: &mut Criterion) {
    let max_workers = 3; // fixed worker count; oversubscription is fine here
    let cfg = PrivCfg {
        data_regs: 64,
        direct_ops: 32,
        rounds: 500,
        worker_txns: 2,
    };
    let mut g = c.benchmark_group("privatization");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cfg.rounds));
    for workers in [1usize, 2, 3].into_iter().filter(|&w| w <= max_workers) {
        g.bench_with_input(BenchmarkId::new("tl2+fence", workers), &workers, |b, &w| {
            b.iter(|| {
                let (rps, lost) = privatization_throughput(StmKind::Tl2, w, &cfg, true);
                assert_eq!(lost, 0);
                rps
            });
        });
        g.bench_with_input(
            BenchmarkId::new("norec-nofence", workers),
            &workers,
            |b, &w| {
                b.iter(|| {
                    let (rps, lost) = privatization_throughput(StmKind::Norec, w, &cfg, false);
                    assert_eq!(lost, 0);
                    rps
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("glock", workers), &workers, |b, &w| {
            b.iter(|| {
                let (rps, lost) = privatization_throughput(StmKind::Glock, w, &cfg, false);
                assert_eq!(lost, 0);
                rps
            });
        });
    }
    g.finish();
}

criterion_group!(benches, privatization);
criterion_main!(benches);
