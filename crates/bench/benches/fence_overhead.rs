//! E15 — fence overhead (the Yoo et al. shape): TL2 throughput on each
//! standard workload under {no fence, selective fence, fence-after-every}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_bench::{mix_throughput, standard_workloads, FencePolicy, MixCfg, StmKind};

fn bench_cfg(cfg: &MixCfg) -> MixCfg {
    // Smaller batches per measurement iteration than the report binary.
    MixCfg {
        txns_per_thread: cfg.txns_per_thread / 10,
        ..*cfg
    }
}

fn fence_overhead(c: &mut Criterion) {
    // Independent of core count: fence overhead needs concurrent (possibly
    // oversubscribed) transactions to exist.
    let threads = 4;
    let mut g = c.benchmark_group("fence_overhead");
    g.sample_size(10);
    for (name, cfg) in standard_workloads() {
        let cfg = bench_cfg(&cfg);
        g.throughput(Throughput::Elements(threads as u64 * cfg.txns_per_thread));
        for policy in FencePolicy::ALL {
            g.bench_with_input(
                BenchmarkId::new(name, policy.label()),
                &policy,
                |b, &policy| {
                    b.iter(|| mix_throughput(StmKind::Tl2, threads, &cfg, policy));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, fence_overhead);
criterion_main!(benches);
