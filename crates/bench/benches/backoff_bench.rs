//! E19 — retry backoff under contention: commits/sec of a shared-counter
//! workload on TL2 with the retry loop's exponential backoff disabled,
//! default, and aggressive.
//!
//! Expected shape on multi-core hosts: with no backoff, contending threads
//! re-collide and burn validation aborts; exponential backoff trades a
//! little latency for fewer wasted attempts. (On a single core the
//! scheduler serializes transactions and the variants converge.)
//!
//! Reproduce with: `cargo bench -p tm-bench --bench backoff_bench`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_bench::contended_counter;
use tm_stm::prelude::BackoffCfg;

fn backoff(c: &mut Criterion) {
    const INCS: u64 = 5_000;
    let variants: [(&str, BackoffCfg); 3] = [
        ("none", BackoffCfg::none()),
        ("default", BackoffCfg::default()),
        (
            "aggressive",
            BackoffCfg {
                spin_base: 64,
                max_shift: 10,
                yield_after: 2,
            },
        ),
    ];
    let mut g = c.benchmark_group("backoff");
    g.sample_size(10);
    for threads in [2usize, 4] {
        g.throughput(Throughput::Elements(threads as u64 * INCS));
        for (name, cfg) in variants {
            g.bench_with_input(BenchmarkId::new(name, threads), &cfg, |b, &cfg| {
                b.iter(|| {
                    let (tput, stats) = contended_counter(threads, INCS, cfg);
                    assert_eq!(stats.commits, threads as u64 * INCS);
                    tput
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, backoff);
criterion_main!(benches);
