//! E22 — the self-tuning contention governor: the phase-shift workload
//! (a read-heavy phase, then a write-heavy phase on the *same* instance)
//! across the configuration axis — `StmConfig::auto()` against each
//! static clock discipline on a right-sized fixed table.
//!
//! Expected shape: auto converges (shrinking its seeded table under the
//! calm read phase, re-tuning the clock discipline at each shift) and
//! tracks the per-phase best static configuration, while a static commit
//! to the wrong discipline stays measurably worse on at least one phase
//! (`BENCH_governor.json`, written by `overhead_report --json`, records
//! the trajectory, separating the cold adaptation transient from the
//! converged steady state).
//!
//! Reproduce with: `cargo bench -p tm-bench --bench governor`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_bench::{governor_configs, governor_phase_shift};

fn governor(c: &mut Criterion) {
    let threads = 2;
    let nregs = 1024;
    let txns_per_phase = 2_000;
    let mut g = c.benchmark_group("governor/phase-shift");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2 * threads as u64 * txns_per_phase));
    for (label, _) in governor_configs(nregs, threads) {
        g.bench_with_input(BenchmarkId::new(&label, threads), &label, |b, label| {
            b.iter(|| {
                // Configs hold per-instance state, so each iteration
                // rebuilds its own from the axis.
                let cfg = governor_configs(nregs, threads)
                    .into_iter()
                    .find(|(l, _)| l == label)
                    .unwrap()
                    .1;
                governor_phase_shift(label, cfg, threads, nregs, txns_per_phase)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, governor);
criterion_main!(benches);
