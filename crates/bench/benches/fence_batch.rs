//! fence_batch — the amortization the grace-period engine buys: N
//! privatization fences paid as N sequential grace periods (blocking
//! `fence()` per handle) vs N tickets coalesced behind one epoch-table
//! scan (`fence_all`). The sequential cost grows with N; the batched cost
//! is one scan plus per-ticket bookkeeping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_stm::prelude::*;

fn fence_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("fence_batch");
    g.sample_size(10);
    for &n in &[1usize, 4, 16] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            let stm = Tl2Stm::with_config(StmConfig::new(16, n).chaos_off());
            let mut handles: Vec<_> = (0..n).map(|t| stm.handle(t)).collect();
            b.iter(|| {
                for h in handles.iter_mut() {
                    h.fence();
                }
            });
        });
        g.bench_with_input(BenchmarkId::new("batched", n), &n, |b, &n| {
            let stm = Tl2Stm::with_config(StmConfig::new(16, n).chaos_off());
            let mut handles: Vec<_> = (0..n).map(|t| stm.handle(t)).collect();
            b.iter(|| fence_all(handles.iter_mut()));
        });
    }
    g.finish();
}

criterion_group!(benches, fence_batch);
criterion_main!(benches);
