//! E17 — checker scalability: cost of DRF analysis and strong-opacity
//! checking (graph construction + witness verification) vs history length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use tm_core::hb::is_drf;
use tm_core::opacity::{check_strong_opacity, CheckOptions};
use tm_core::trace::History;
use tm_stm::prelude::*;

/// Produce a recorded TL2 history with roughly `txns` transactions across 3
/// threads (disjoint write sets + shared reads: DRF and opaque).
fn recorded_history(txns: u64) -> History {
    let rec = Arc::new(Recorder::new(3));
    let stm = Tl2Stm::with_recorder(16, 3, Some(Arc::clone(&rec)));
    std::thread::scope(|s| {
        for t in 0..3usize {
            let stm = stm.clone();
            s.spawn(move || {
                let mut h = stm.handle(t);
                for i in 0..txns / 3 {
                    let _ = h.try_atomic(|tx| {
                        let a = tx.read((i % 13) as usize)?;
                        tx.write(t, ((t as u64 + 1) << 40) | (i + 1))?;
                        Ok(a)
                    });
                }
            });
        }
    });
    rec.snapshot_history()
}

fn checker(c: &mut Criterion) {
    let mut g = c.benchmark_group("checker");
    g.sample_size(10);
    for txns in [30u64, 90, 300, 900] {
        let h = recorded_history(txns);
        g.throughput(Throughput::Elements(h.len() as u64));
        g.bench_with_input(BenchmarkId::new("drf", h.len()), &h, |b, h| {
            b.iter(|| is_drf(h));
        });
        g.bench_with_input(BenchmarkId::new("strong_opacity", h.len()), &h, |b, h| {
            b.iter(|| check_strong_opacity(h, &CheckOptions::default()).is_ok());
        });
    }
    g.finish();
}

criterion_group!(benches, checker);
criterion_main!(benches);
