//! E24 — the service: the end-to-end sharded KV workload (zipfian client
//! fleet over `TxMap` shards, typed `TVar` sessions, background
//! freeze/snapshot cycle) at bench scale. One criterion sample is one
//! whole fleet run, so the measurement covers the paper's full discipline
//! — instrumented ops, privatize-and-scan, fences, publish-back —
//! composed the way a real service would compose them
//! (`BENCH_service.json`, written by `overhead_report --json`, records
//! throughput plus per-op-class p50/p99/p999).
//!
//! Reproduce with: `cargo bench -p tm-bench --bench service`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_bench::service_matrix;

fn service(c: &mut Criterion) {
    let ops_per_client = 400u64;
    let clients = tm_service::ServiceCfg::full().clients as u64;
    let mut g = c.benchmark_group("service/sharded-kv");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ops_per_client * clients));
    g.bench_with_input(
        BenchmarkId::new("tl2-fleet", ops_per_client),
        &ops_per_client,
        |b, &ops| {
            b.iter(|| service_matrix(ops));
        },
    );
    g.finish();
}

criterion_group!(benches, service);
criterion_main!(benches);
