//! E21 — contention-aware adaptive orec striping: the stripe-churn
//! workload (disjoint per-thread register blocks, so every cross-thread
//! abort is a false conflict) across the storage-policy axis — an
//! undersized fixed table, a comfortable fixed table, and the adaptive
//! table starting undersized.
//!
//! Expected shape: the undersized fixed table pays false conflicts
//! proportional to the register file; the big fixed table is fast but
//! charges its full metadata everywhere; the adaptive table starts cheap
//! and converges toward big-table throughput as its growth windows fire
//! (`BENCH_stripes.json`, written by `overhead_report --json`, records the
//! trajectory: commits/sec, false conflicts, resizes).
//!
//! Reproduce with: `cargo bench -p tm-bench --bench stripe_adapt`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_bench::{stripe_churn_throughput, stripe_policies};

fn stripe_adapt(c: &mut Criterion) {
    let threads = 2;
    let txns_per_thread = 2_000;
    for nregs in [1usize << 10, 1 << 14] {
        let mut g = c.benchmark_group(format!("stripe_adapt/{nregs}regs"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(threads as u64 * txns_per_thread));
        for storage in stripe_policies() {
            g.bench_with_input(
                BenchmarkId::new(storage.label(), threads),
                &storage,
                |b, &storage| {
                    b.iter(|| stripe_churn_throughput(storage, threads, nregs, txns_per_thread));
                },
            );
        }
        g.finish();
    }
}

criterion_group!(benches, stripe_adapt);
criterion_main!(benches);
