//! Vendored, minimal, API-compatible subset of the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the two utilities
//! this workspace actually uses — [`utils::CachePadded`] and
//! [`utils::Backoff`] — are reimplemented here with the same public surface
//! and semantics. Swap this path dependency for the real `crossbeam` when a
//! registry is available; no source changes should be needed.

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to the length of a cache line (128 bytes, the
    /// safe upper bound on x86_64/aarch64 where adjacent-line prefetchers
    /// pull pairs of 64-byte lines).
    #[derive(Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("CachePadded")
                .field("value", &self.value)
                .finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Exponential backoff for spin loops: spin with exponentially growing
    /// iteration counts, then start yielding to the scheduler, and report
    /// completion once blocking would be preferable.
    pub struct Backoff {
        step: std::cell::Cell<u32>,
    }

    impl Backoff {
        pub fn new() -> Self {
            Backoff {
                step: std::cell::Cell::new(0),
            }
        }

        pub fn reset(&self) {
            self.step.set(0);
        }

        /// Backoff in a lock-free loop: spin `2^step` times.
        pub fn spin(&self) {
            for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
                std::hint::spin_loop();
            }
            if self.step.get() <= SPIN_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// Backoff while waiting for another thread: spin first, yield after.
        pub fn snooze(&self) {
            if self.step.get() <= SPIN_LIMIT {
                for _ in 0..1u32 << self.step.get() {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if self.step.get() <= YIELD_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// Has backoff escalated to the point where parking would be better?
        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }

    impl Default for Backoff {
        fn default() -> Self {
            Backoff::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::utils::{Backoff, CachePadded};

    #[test]
    fn cache_padded_is_aligned_and_derefs() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(p.into_inner(), 7);
    }

    #[test]
    fn backoff_completes_after_escalation() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
        b.spin();
    }
}
