//! Vendored, minimal, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the benchmarking
//! surface this workspace uses is reimplemented here: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_with_input`,
//! `bench_function`, `finish`), [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros, so `cargo bench` runs unchanged.
//!
//! Measurement model: `Bencher::iter` first calibrates how many iterations
//! fit in ~20 ms, then times `sample_size` samples of that batch size and
//! reports min/median/mean per-iteration time (and throughput when
//! configured). No plots, no statistics beyond that. Honors a benchmark
//! name filter as the first free CLI argument, like the real harness, and
//! `TM_BENCH_SAMPLES` to override sample counts globally.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export shape of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<F: Display, P: Display>(function_id: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free CLI argument (skipping libtest-style flags cargo bench
        // passes, e.g. `--bench`) filters benchmarks by substring.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: group_name.into(),
            filter: self.filter.clone(),
            sample_size: default_samples(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let filter = self.filter.clone();
        run_one(id, &filter, None, default_samples(), f);
        self
    }
}

fn default_samples() -> usize {
    std::env::var("TM_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    filter: Option<String>,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("TM_BENCH_SAMPLES").is_err() {
            self.sample_size = n.max(2);
        }
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F, I: Display>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, &self.filter, self.throughput, self.sample_size, f);
        self
    }

    pub fn bench_with_input<F, I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            &self.filter,
            self.throughput,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    batch: u64,
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    /// Time `f`, auto-batched so each sample lasts ~20 ms.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibration: run once; batch more iterations if it was fast.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(20);
        self.batch = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.per_sample {
            let t0 = Instant::now();
            for _ in 0..self.batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / self.batch as u32);
        }
    }
}

fn run_one<F>(
    name: &str,
    filter: &Option<String>,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(filt) = filter {
        if !name.contains(filt.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        batch: 1,
        samples: Vec::new(),
        per_sample: samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no measurement: Bencher::iter never called)");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean: Duration = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    print!(
        "{name:<48} time: [min {} median {} mean {}]",
        fmt_dur(min),
        fmt_dur(median),
        fmt_dur(mean)
    );
    if let Some(t) = throughput {
        let per_sec = |n: u64| n as f64 / median.as_secs_f64();
        match t {
            Throughput::Elements(n) => print!("  thrpt: {} elem/s", fmt_rate(per_sec(n))),
            Throughput::Bytes(n) => print!("  thrpt: {} B/s", fmt_rate(per_sec(n))),
        }
    }
    println!();
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.3}G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.3}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.3}K", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        // No env mutation here: setenv racing sibling tests' getenv is UB
        // on glibc; sample_size(2) covers the same path when the var is
        // unset, and merely differs in count when a caller exported it.
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            ran += 1;
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("something_else", |_b| ran = true);
        assert!(!ran);
    }
}
