//! Vendored, minimal, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the surface this
//! workspace uses is reimplemented here: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` attribute, `prop_assert!` /
//! `prop_assert_eq!`, [`strategy::Strategy`] with `prop_map`, range and
//! tuple strategies, [`any`], [`collection::vec`], and [`prop_oneof!`].
//!
//! Differences from the real crate: generation is driven by a deterministic
//! splitmix64 RNG seeded per test case (so failures are reproducible by
//! construction) and there is **no shrinking** — a failing case reports its
//! case number and panics with the original assertion message. Swap this
//! path dependency for the real `proptest` when a registry is available.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Box a strategy for storage in heterogeneous collections
    /// (the expansion target of [`crate::prop_oneof!`]).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies of a common value type
    /// (the runtime of [`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    lo + rng.below_inclusive(span) as $t
                }
            }
        )*};
    }
    uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A / 0, B / 1);
        (A / 0, B / 1, C / 2);
        (A / 0, B / 1, C / 2, D / 3);
    }

    /// Strategy for "any value of `T`" — see [`crate::any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any::new()
        }
    }

    /// Types with a canonical full-domain generator.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Strategy for an arbitrary value of `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test-case configuration.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator; seeded per case so every failure
    /// is reproducible without a persistence file.
    pub struct TestRng(u64);

    impl TestRng {
        pub fn deterministic(test_seed: u64, case: u32) -> Self {
            TestRng(test_seed ^ (u64::from(case).wrapping_mul(0xA076_1D64_78BD_642F)))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n.max(1)
        }

        /// Uniform in `0..=n`.
        pub fn below_inclusive(&mut self, n: u64) -> u64 {
            if n == u64::MAX {
                self.next_u64()
            } else {
                self.next_u64() % (n + 1)
            }
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` runs
/// `cases` times with freshly generated arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Stable per-test seed: hash of the test name.
                let seed = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
                    });
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(seed, case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest: case {}/{} of `{}` failed (deterministic seed {:#x})",
                            case + 1, config.cases, stringify!($name), seed,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 0usize..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_vec(pairs in crate::collection::vec((0u32..4, 10u64..20), 0..8)) {
            for (a, b) in pairs {
                prop_assert!(a < 4);
                prop_assert!((10..20).contains(&b));
            }
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u32..5).prop_map(|x| x * 2),
            (10u32..12).prop_map(|x| x + 1),
        ]) {
            prop_assert!(v % 2 == 0 || (11..13).contains(&v));
        }

        #[test]
        fn any_produces_varied_values(x in any::<u64>(), flip in any::<bool>()) {
            // Smoke: both generators run; no constraint to violate.
            let _ = (x, flip);
        }
    }

    #[test]
    fn deterministic_per_case() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic(42, 7);
        let mut b = crate::test_runner::TestRng::deterministic(42, 7);
        let s = 0u64..1000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
