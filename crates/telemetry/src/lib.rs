//! # tm-telemetry — flight recorder + latency histograms for the STM runtime
//!
//! The runtime self-tunes (clock handoffs, stripe migrations, grace-fenced
//! reconfigurations), and flat counters cannot explain *why* it did what it
//! did or what the latency *distribution* looked like while it happened.
//! This crate is the always-on observability layer the rest of the
//! workspace threads through itself:
//!
//! * [`LatencyHistogram`] — log-bucketed (power-of-two) latency
//!   distributions as plain `u64` arrays: zero atomics in the type, `merge`
//!   in the same style as the runtime's `Stats`, and
//!   p50/p90/p99/p999 extraction ([`LatencyHistogram::quantiles`]).
//!   [`LatencyHistograms`] bundles the five distributions the runtime
//!   tracks (commit latency, abort→retry gap, fence wait, grace-period
//!   duration, blocking-retry sleep) behind named fields, so a forgotten
//!   field breaks the merge-identity test's exhaustive literal at compile
//!   time.
//! * [`OpClass`] / [`OpClassHistograms`] — the service harness's
//!   per-operation-class views over the same histogram type: the
//!   end-to-end sharded KV workload (`tm-service`) classifies every request
//!   (get / put / rmw / privatize-and-scan / publish-back) and reports
//!   p50/p99/p999 per class, merged client-by-client exactly like the
//!   per-slot runtime histograms.
//! * [`TraceRing`] — a fixed-capacity, overwrite-oldest flight recorder of
//!   [`TraceEvent`]s: transaction begin/commit/abort-with-cause, fence
//!   issue/retire, grace scans, and every governor decision (clock switch
//!   request/settle, stripe publish/retire), each carrying the counters
//!   that justified it ([`EventKind`]).
//! * [`Telemetry`] — the per-instance container: one mutex-guarded
//!   [`SlotTelemetry`] cell per thread slot (plus one *engine* slot for
//!   events raised off-transaction: grace scans, handoff settles,
//!   generation retirements), an [`Instant`] epoch for timestamps, and a
//!   single `enabled` flag. **Disabled cost is one relaxed load per event
//!   site** — no lock, no clock sample, no allocation; the runtime's
//!   steady-state test pins this. Enabled cost per event is one
//!   uncontended lock of the caller's own padded cell (the same per-slot
//!   pattern as the history recorder) plus plain-array arithmetic — the
//!   histograms and rings themselves contain no atomics.
//! * [`TelemetrySnapshot`] — merges histograms and rings across every slot
//!   into one coherent view, rendered as hand-rolled JSON
//!   ([`TelemetrySnapshot::to_json`], schema `bench_telemetry/v1`, same
//!   style as the `BENCH_*.json` artifacts).
//!
//! Capacity is selected at construction via [`TraceConfig`]; the runtime
//! reads the `TM_STM_TRACE` environment knob once
//! ([`TraceConfig::from_env`]): `off` disables telemetry entirely, a
//! number selects the per-slot ring capacity (default 1024 events/slot).

#![warn(missing_docs)]

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of power-of-two latency buckets: bucket `i` holds samples whose
/// nanosecond value has its highest set bit at position `i` (bucket 0 also
/// holds 0). 64 buckets cover the full `u64` range — no sample is ever out
/// of range.
pub const HIST_BUCKETS: usize = 64;

/// A log-bucketed latency distribution: plain `u64` arrays, no atomics.
///
/// Samples are nanoseconds; `record` is two array ops and two adds. The
/// quantile extraction returns the *upper edge* of the bucket containing
/// the requested rank — an overestimate by at most 2x, which is the
/// resolution bargain every power-of-two histogram makes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// The p50/p90/p99/p999 view of one [`LatencyHistogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Quantiles {
    /// Median (nanoseconds, bucket upper edge).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl LatencyHistogram {
    /// Bucket index for a nanosecond sample: the position of its highest
    /// set bit (0 maps to bucket 0).
    #[inline]
    pub fn bucket_index(ns: u64) -> usize {
        63 - (ns | 1).leading_zeros() as usize
    }

    /// Inclusive upper edge of bucket `i` (the value quantiles report).
    pub fn bucket_upper_edge(i: usize) -> u64 {
        if i >= HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Record one nanosecond sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (nanoseconds, saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The raw bucket array (for sparkline rendering and report code).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Accumulate `o` into `self`, bucket-wise — the same shape as
    /// `Stats::merge`: counters add, nothing is lost.
    pub fn merge(&mut self, o: &LatencyHistogram) {
        for (b, ob) in self.buckets.iter_mut().zip(o.buckets.iter()) {
            *b += ob;
        }
        self.count += o.count;
        self.sum = self.sum.saturating_add(o.sum);
    }

    /// The value at quantile `q` (in `[0, 1]`): the upper edge of the
    /// bucket holding the `ceil(q * count)`-th smallest sample. 0 when the
    /// histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Self::bucket_upper_edge(i);
            }
        }
        u64::MAX
    }

    /// The standard report quartet: p50/p90/p99/p999.
    pub fn quantiles(&self) -> Quantiles {
        Quantiles {
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

/// The five latency distributions the runtime tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyClass {
    /// Transaction begin → successful commit, per attempt that committed.
    Commit,
    /// Abort → next retry of the same `atomic` call (the backoff gap).
    AbortGap,
    /// Time blocked in `fence`/`fence_join` — including bounded waits that
    /// timed out. When telemetry is enabled, the sum of this distribution
    /// equals `Stats::fence_wait_ns`: every fence join feeds both sinks
    /// from the same measurement.
    FenceWait,
    /// Grace-period duration: scan start (period close) → scan completion.
    Grace,
    /// Time a blocking `retry` spent asleep on its wait-on-retry control
    /// block, per sleep (registration → conflicting-commit wakeup).
    RetrySleep,
}

impl LatencyClass {
    /// Every class, in report order.
    pub const ALL: [LatencyClass; 5] = [
        LatencyClass::Commit,
        LatencyClass::AbortGap,
        LatencyClass::FenceWait,
        LatencyClass::Grace,
        LatencyClass::RetrySleep,
    ];

    /// Report key for the class.
    pub fn label(self) -> &'static str {
        match self {
            LatencyClass::Commit => "commit",
            LatencyClass::AbortGap => "abort-gap",
            LatencyClass::FenceWait => "fence-wait",
            LatencyClass::Grace => "grace",
            LatencyClass::RetrySleep => "retry-sleep",
        }
    }
}

/// The runtime's latency histograms, one field per [`LatencyClass`].
///
/// A struct with named fields — not an array — on purpose: the
/// merge-identity test constructs an exhaustive literal, so adding a class
/// here without extending [`LatencyHistograms::merge`] (and every report)
/// breaks the build, the same guard `Stats` uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistograms {
    /// Begin → commit latency of committed attempts.
    pub commit: LatencyHistogram,
    /// Abort → retry gap of the shared `atomic` loop.
    pub abort_gap: LatencyHistogram,
    /// Blocked fence-wait time (`Stats::fence_wait_ns`'s distribution).
    pub fence_wait: LatencyHistogram,
    /// Grace-period (epoch-table scan) durations.
    pub grace: LatencyHistogram,
    /// Blocking-retry sleep durations (registration → wakeup).
    pub retry_sleep: LatencyHistogram,
}

impl LatencyHistograms {
    /// Record one sample into the `class` distribution.
    #[inline]
    pub fn record(&mut self, class: LatencyClass, ns: u64) {
        self.get_mut(class).record(ns);
    }

    /// The distribution for `class`.
    pub fn get(&self, class: LatencyClass) -> &LatencyHistogram {
        match class {
            LatencyClass::Commit => &self.commit,
            LatencyClass::AbortGap => &self.abort_gap,
            LatencyClass::FenceWait => &self.fence_wait,
            LatencyClass::Grace => &self.grace,
            LatencyClass::RetrySleep => &self.retry_sleep,
        }
    }

    /// Mutable access to the distribution for `class`.
    pub fn get_mut(&mut self, class: LatencyClass) -> &mut LatencyHistogram {
        match class {
            LatencyClass::Commit => &mut self.commit,
            LatencyClass::AbortGap => &mut self.abort_gap,
            LatencyClass::FenceWait => &mut self.fence_wait,
            LatencyClass::Grace => &mut self.grace,
            LatencyClass::RetrySleep => &mut self.retry_sleep,
        }
    }

    /// Accumulate `o` into `self`, field by field (`Stats::merge` style).
    pub fn merge(&mut self, o: &LatencyHistograms) {
        self.commit.merge(&o.commit);
        self.abort_gap.merge(&o.abort_gap);
        self.fence_wait.merge(&o.fence_wait);
        self.grace.merge(&o.grace);
        self.retry_sleep.merge(&o.retry_sleep);
    }
}

/// The service harness's operation classes — the request taxonomy of the
/// end-to-end sharded KV workload (`tm-service`): point reads, point
/// writes, read-modify-write cycles, and the paper-critical
/// privatize-and-scan / publish-back pair that exercises the fence and
/// grace machinery under production-shaped traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Transactional point lookup.
    Get,
    /// Transactional insert-or-update.
    Put,
    /// Transactional read-modify-write (lookup + dependent update in one
    /// transaction).
    Rmw,
    /// Privatize-and-scan: freeze a shard (flag transaction + fence), then
    /// bulk-read it uninstrumented — the paper's motivating bulk-operation
    /// pattern, measured from freeze request to scan completion.
    Scan,
    /// Publish-back: the thaw transaction returning a scanned shard to
    /// transactional traffic (safe without a fence by `xpo;txwr`).
    Publish,
}

impl OpClass {
    /// Every class, in report order.
    pub const ALL: [OpClass; 5] = [
        OpClass::Get,
        OpClass::Put,
        OpClass::Rmw,
        OpClass::Scan,
        OpClass::Publish,
    ];

    /// Report key for the class.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Get => "get",
            OpClass::Put => "put",
            OpClass::Rmw => "rmw",
            OpClass::Scan => "scan",
            OpClass::Publish => "publish",
        }
    }

    /// Position of the class in [`OpClass::ALL`] — the index services use
    /// for fixed-size per-class counter arrays (`[u64; 5]`).
    pub fn index(self) -> usize {
        match self {
            OpClass::Get => 0,
            OpClass::Put => 1,
            OpClass::Rmw => 2,
            OpClass::Scan => 3,
            OpClass::Publish => 4,
        }
    }
}

/// Per-op-class latency distributions for the service harness, one field
/// per [`OpClass`] — the same named-field discipline as
/// [`LatencyHistograms`]: the merge-identity test constructs an exhaustive
/// literal, so adding a class here without extending
/// [`OpClassHistograms::merge`] (and every report) breaks the build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpClassHistograms {
    /// Point-lookup latency.
    pub get: LatencyHistogram,
    /// Insert-or-update latency.
    pub put: LatencyHistogram,
    /// Read-modify-write latency.
    pub rmw: LatencyHistogram,
    /// Privatize-and-scan latency (freeze request → scan completion).
    pub scan: LatencyHistogram,
    /// Publish-back (thaw) latency.
    pub publish: LatencyHistogram,
}

impl OpClassHistograms {
    /// Record one nanosecond sample into the `class` distribution.
    #[inline]
    pub fn record(&mut self, class: OpClass, ns: u64) {
        self.get_mut(class).record(ns);
    }

    /// The distribution for `class`.
    pub fn get(&self, class: OpClass) -> &LatencyHistogram {
        match class {
            OpClass::Get => &self.get,
            OpClass::Put => &self.put,
            OpClass::Rmw => &self.rmw,
            OpClass::Scan => &self.scan,
            OpClass::Publish => &self.publish,
        }
    }

    /// Mutable access to the distribution for `class`.
    pub fn get_mut(&mut self, class: OpClass) -> &mut LatencyHistogram {
        match class {
            OpClass::Get => &mut self.get,
            OpClass::Put => &mut self.put,
            OpClass::Rmw => &mut self.rmw,
            OpClass::Scan => &mut self.scan,
            OpClass::Publish => &mut self.publish,
        }
    }

    /// Total samples across every class (the service's op count).
    pub fn total_count(&self) -> u64 {
        OpClass::ALL.iter().map(|&c| self.get(c).count()).sum()
    }

    /// Accumulate `o` into `self`, field by field (`Stats::merge` style) —
    /// how the service merges per-client views into the fleet-wide report.
    pub fn merge(&mut self, o: &OpClassHistograms) {
        self.get.merge(&o.get);
        self.put.merge(&o.put);
        self.rmw.merge(&o.rmw);
        self.scan.merge(&o.scan);
        self.publish.merge(&o.publish);
    }
}

/// Why a transaction attempt aborted (the flight recorder's classification
/// of `TxAbort` events).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortCause {
    /// Read-time validation failure.
    Read,
    /// Write-op failure (rare; policies that can fail buffered writes).
    Write,
    /// Commit-time lock acquisition failure.
    Lock,
    /// Commit-time read-set re-validation failure.
    Validate,
    /// `Err(Abort)` returned by the transaction body.
    User,
    /// The transaction body (or a fault-injected commit step) panicked; the
    /// runtime rolled the attempt back, released every lock and the epoch
    /// slot, recorded this abort, and resumed the unwind.
    Panic,
}

impl AbortCause {
    /// Report key for the cause.
    pub fn label(self) -> &'static str {
        match self {
            AbortCause::Read => "read",
            AbortCause::Write => "write",
            AbortCause::Lock => "lock",
            AbortCause::Validate => "validate",
            AbortCause::User => "user",
            AbortCause::Panic => "panic",
        }
    }

    /// Stable numeric encoding (JSON field value).
    fn code(self) -> u64 {
        match self {
            AbortCause::Read => 0,
            AbortCause::Write => 1,
            AbortCause::Lock => 2,
            AbortCause::Validate => 3,
            AbortCause::User => 4,
            AbortCause::Panic => 5,
        }
    }
}

/// One flight-recorder event: the runtime's taxonomy of things worth
/// reconstructing after the fact. Governor decisions carry the counters
/// that justified them, so a snapshot can answer "why did it switch?"
/// without correlating external logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A transaction attempt began.
    TxBegin,
    /// A transaction attempt committed, with its begin→commit latency.
    TxCommit {
        /// Begin → commit latency of this attempt (nanoseconds).
        latency_ns: u64,
    },
    /// A transaction attempt aborted.
    TxAbort {
        /// Why it aborted.
        cause: AbortCause,
    },
    /// A privatization fence was requested (`fence_async`).
    FenceIssue {
        /// Grace period the fence ticket was stamped with.
        period: u64,
    },
    /// A fence ticket resolved (its grace period elapsed).
    FenceRetire {
        /// Grace period the ticket was stamped with.
        period: u64,
    },
    /// A grace period completed: one epoch-table scan retired it (and every
    /// fence ticket batched behind it).
    GraceScan {
        /// The retired period.
        period: u64,
        /// Scan start (period close) → completion (nanoseconds).
        duration_ns: u64,
    },
    /// The contention governor's fold requested (and was granted) a clock
    /// discipline switch. Carries the fold's window counters — the
    /// evidence the decision was made on.
    ClockSwitchRequest {
        /// `true`: GV1→GV5 (write-heavy window); `false`: GV5→GV1.
        to_gv5: bool,
        /// Read-only commits in the fold's window.
        read_commits: u64,
        /// Writing commits in the fold's window.
        write_commits: u64,
    },
    /// A clock handoff's grace period retired: the switch settled and the
    /// GV1 elision fast path re-armed.
    ClockSwitchSettle {
        /// The discipline that is now settled.
        to_gv5: bool,
    },
    /// The adaptive table published a resized generation, opening a
    /// grace-fenced migration window. Carries the window evidence.
    StripePublish {
        /// `true`: grow (doubled); `false`: governor shrink (halved).
        grow: bool,
        /// Stripe count before the resize.
        from_stripes: u64,
        /// Stripe count after the resize.
        to_stripes: u64,
        /// False conflicts observed in the deciding window (0 when the
        /// resize was requested directly, outside a window boundary).
        false_conflicts: u64,
        /// Commits in the deciding window (0 for direct requests).
        window: u64,
    },
    /// A migration window closed: the old generation was retired by its
    /// grace period's completion callback.
    StripeRetire {
        /// Stripe count of the surviving (current) generation.
        stripes: u64,
    },
    /// A handle exhausted its retry budget and escalated to the irrevocable
    /// serial fallback: it took the runtime-wide escalation token, drained
    /// in-flight transactions, and re-ran its body serialized.
    Escalation {
        /// Aborted attempts paid before escalating.
        attempts: u64,
        /// `true` when the wall-clock deadline (not the attempt cap)
        /// triggered the escalation.
        deadline_expired: bool,
    },
    /// A blocking `retry` sleep ended: a conflicting commit wrote one of
    /// the registers the waiter was registered on (or the waiter was woken
    /// spuriously) and the transaction is about to re-run.
    RetryWake {
        /// The register whose commit write delivered the wakeup.
        reg: u64,
        /// How long the waiter slept (nanoseconds) — the same measurement
        /// the `retry-sleep` histogram records.
        slept_ns: u64,
    },
    /// The grace engine noticed an epoch slot pinned past the stall
    /// threshold while a scan was waiting on it — the signature of a thread
    /// parked (or dead) inside a transaction. Raised from the driver tick
    /// and from bounded fence waits, once per slot per scan.
    StallReport {
        /// The epoch slot holding up the scan.
        stalled_slot: u64,
        /// How long the scan has been waiting on it (nanoseconds).
        pinned_ns: u64,
        /// The grace period the scan is trying to retire.
        period: u64,
    },
}

impl EventKind {
    /// Report key for the event kind.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::TxBegin => "tx-begin",
            EventKind::TxCommit { .. } => "tx-commit",
            EventKind::TxAbort { .. } => "tx-abort",
            EventKind::FenceIssue { .. } => "fence-issue",
            EventKind::FenceRetire { .. } => "fence-retire",
            EventKind::GraceScan { .. } => "grace-scan",
            EventKind::ClockSwitchRequest { .. } => "clock-switch-request",
            EventKind::ClockSwitchSettle { .. } => "clock-switch-settle",
            EventKind::StripePublish { .. } => "stripe-publish",
            EventKind::StripeRetire { .. } => "stripe-retire",
            EventKind::Escalation { .. } => "escalation",
            EventKind::RetryWake { .. } => "retry-wake",
            EventKind::StallReport { .. } => "stall-report",
        }
    }

    /// The event's payload as `(name, value)` pairs, in declaration order —
    /// what the JSON renderer and the human report both consume. Booleans
    /// encode as 0/1, [`AbortCause`] as its stable code.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            EventKind::TxBegin => vec![],
            EventKind::TxCommit { latency_ns } => vec![("latency_ns", latency_ns)],
            EventKind::TxAbort { cause } => vec![("cause", cause.code())],
            EventKind::FenceIssue { period } => vec![("period", period)],
            EventKind::FenceRetire { period } => vec![("period", period)],
            EventKind::GraceScan {
                period,
                duration_ns,
            } => vec![("period", period), ("duration_ns", duration_ns)],
            EventKind::ClockSwitchRequest {
                to_gv5,
                read_commits,
                write_commits,
            } => vec![
                ("to_gv5", u64::from(to_gv5)),
                ("read_commits", read_commits),
                ("write_commits", write_commits),
            ],
            EventKind::ClockSwitchSettle { to_gv5 } => vec![("to_gv5", u64::from(to_gv5))],
            EventKind::StripePublish {
                grow,
                from_stripes,
                to_stripes,
                false_conflicts,
                window,
            } => vec![
                ("grow", u64::from(grow)),
                ("from_stripes", from_stripes),
                ("to_stripes", to_stripes),
                ("false_conflicts", false_conflicts),
                ("window", window),
            ],
            EventKind::StripeRetire { stripes } => vec![("stripes", stripes)],
            EventKind::Escalation {
                attempts,
                deadline_expired,
            } => vec![
                ("attempts", attempts),
                ("deadline_expired", u64::from(deadline_expired)),
            ],
            EventKind::RetryWake { reg, slept_ns } => {
                vec![("reg", reg), ("slept_ns", slept_ns)]
            }
            EventKind::StallReport {
                stalled_slot,
                pinned_ns,
                period,
            } => vec![
                ("stalled_slot", stalled_slot),
                ("pinned_ns", pinned_ns),
                ("period", period),
            ],
        }
    }

    /// Is this one of the contention governor's decisions (clock switches,
    /// stripe resizes) — the events `stm_inspect`'s "last N decisions"
    /// section renders?
    pub fn is_governor_decision(&self) -> bool {
        matches!(
            self,
            EventKind::ClockSwitchRequest { .. }
                | EventKind::ClockSwitchSettle { .. }
                | EventKind::StripePublish { .. }
                | EventKind::StripeRetire { .. }
        )
    }
}

/// One timestamped flight-recorder entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the owning [`Telemetry`]'s construction.
    pub at_ns: u64,
    /// Thread slot that raised the event ([`Telemetry::engine_slot`] for
    /// off-transaction events: grace scans, settles, retirements).
    pub slot: u16,
    /// What happened.
    pub kind: EventKind,
}

/// A fixed-capacity, overwrite-oldest ring of [`TraceEvent`]s — the
/// per-slot flight recorder. Plain data, no atomics; concurrency control
/// is the owning [`Telemetry`]'s per-slot cell.
#[derive(Clone, Debug, Default)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    /// Next write position (== oldest entry once the ring has wrapped).
    head: usize,
    capacity: usize,
    /// Events overwritten since construction (ring wrapped past them).
    dropped: u64,
}

impl TraceRing {
    /// An empty ring holding at most `capacity` events (0 = record none).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            buf: Vec::new(),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Append an event, overwriting the oldest once full.
    pub fn push(&mut self, e: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            // First lap: grow lazily so an idle slot costs no memory.
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.dropped += 1;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The construction-time capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten (lost to the ring wrapping) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held events, oldest first.
    pub fn iter_in_order(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = if self.buf.len() < self.capacity {
            // Not yet wrapped: buf[0..] is already oldest-first.
            (&self.buf[..0], &self.buf[..])
        } else {
            (&self.buf[..self.head], &self.buf[self.head..])
        };
        older.iter().chain(newer.iter())
    }
}

/// Per-slot telemetry cell: this slot's histograms and flight-recorder
/// ring. Plain data — the owning [`Telemetry`] wraps each cell in its own
/// padded mutex.
#[derive(Clone, Debug, Default)]
pub struct SlotTelemetry {
    /// The slot's latency distributions.
    pub hists: LatencyHistograms,
    /// The slot's flight recorder.
    pub ring: TraceRing,
}

/// Construction-time telemetry configuration: the flight-recorder capacity
/// per slot, with 0 meaning *telemetry off* (histograms included).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity per slot; 0 disables all telemetry.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: Self::DEFAULT_CAPACITY,
        }
    }
}

impl TraceConfig {
    /// Default flight-recorder capacity: 1024 events per thread slot.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Telemetry fully disabled: every event site costs one relaxed load.
    pub fn off() -> Self {
        TraceConfig { capacity: 0 }
    }

    /// Telemetry enabled with `capacity` events per slot (`off()` if 0).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceConfig { capacity }
    }

    /// Is any recording enabled?
    pub fn is_enabled(self) -> bool {
        self.capacity > 0
    }

    /// Process-wide default, read once (the `TM_STM_DRIVER` pattern):
    /// `TM_STM_TRACE=off` disables telemetry, `TM_STM_TRACE=<n>` selects a
    /// per-slot ring capacity of `n` events, unset or unparsable means the
    /// default ([`Self::DEFAULT_CAPACITY`] events/slot, enabled).
    pub fn from_env() -> Self {
        static CFG: std::sync::OnceLock<TraceConfig> = std::sync::OnceLock::new();
        *CFG.get_or_init(|| Self::parse(std::env::var("TM_STM_TRACE").ok().as_deref()))
    }

    /// The `TM_STM_TRACE` grammar, factored out of [`Self::from_env`] so
    /// tests can exercise it without mutating the process environment.
    pub fn parse(v: Option<&str>) -> Self {
        match v.map(str::trim) {
            Some("off") | Some("0") => Self::off(),
            Some(s) => match s.parse::<usize>() {
                Ok(n) => Self::with_capacity(n),
                Err(_) => Self::default(),
            },
            None => Self::default(),
        }
    }
}

/// The per-instance telemetry container: one padded, mutex-guarded
/// [`SlotTelemetry`] cell per thread slot plus one *engine* slot, an
/// enabled flag, and the timestamp epoch.
///
/// ## Cost model
///
/// *Disabled* (`TraceConfig::off()` / `TM_STM_TRACE=off`): every
/// `record_*` call is one relaxed load of `enabled` and an immediate
/// return — no lock, no `Instant::now`, no shared-line write. *Enabled*:
/// one uncontended lock of the caller's own cache-padded cell (slots are
/// thread-private, so the lock word is too) plus plain-array updates. The
/// only cross-slot traffic is [`Telemetry::snapshot`], which walks the
/// cells one at a time.
pub struct Telemetry {
    enabled: AtomicBool,
    capacity: usize,
    epoch: Instant,
    /// `nslots + 1` cells: the last is the engine slot.
    slots: Box<[CachePadded<Mutex<SlotTelemetry>>]>,
}

impl Telemetry {
    /// A telemetry container for `nslots` thread slots (one extra engine
    /// slot is added internally), configured by `cfg`.
    pub fn new(nslots: usize, cfg: TraceConfig) -> Arc<Self> {
        let total = nslots + 1;
        assert!(
            total <= usize::from(u16::MAX),
            "slot count exceeds the 16-bit event encoding"
        );
        Arc::new(Telemetry {
            enabled: AtomicBool::new(cfg.is_enabled()),
            capacity: cfg.capacity,
            epoch: Instant::now(),
            slots: (0..total)
                .map(|_| {
                    CachePadded::new(Mutex::new(SlotTelemetry {
                        hists: LatencyHistograms::default(),
                        ring: TraceRing::new(cfg.capacity),
                    }))
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        })
    }

    /// Is recording enabled? One relaxed load — the whole disabled-path
    /// cost of every event site.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The pseudo-slot engine-side events are recorded under (grace scans,
    /// handoff settles, generation retirements — work not attributable to
    /// any one transaction slot).
    pub fn engine_slot(&self) -> u16 {
        (self.slots.len() - 1) as u16
    }

    /// Per-slot flight-recorder capacity this instance was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Nanoseconds since this telemetry instance was constructed (the
    /// timebase of every [`TraceEvent::at_ns`]).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    #[inline]
    fn with_slot(&self, slot: u16, f: impl FnOnce(&mut SlotTelemetry)) {
        let cell = &self.slots[usize::from(slot)];
        f(&mut cell.lock().unwrap());
    }

    /// Record one event into `slot`'s ring. No-op (one relaxed load) when
    /// disabled.
    #[inline]
    pub fn record_event(&self, slot: u16, kind: EventKind) {
        if !self.enabled() {
            return;
        }
        let at_ns = self.now_ns();
        self.with_slot(slot, |s| s.ring.push(TraceEvent { at_ns, slot, kind }));
    }

    /// Record one event into the engine slot's ring.
    #[inline]
    pub fn record_engine_event(&self, kind: EventKind) {
        self.record_event(self.engine_slot(), kind);
    }

    /// Record one latency sample into `slot`'s `class` histogram. No-op
    /// (one relaxed load) when disabled.
    #[inline]
    pub fn record_latency(&self, slot: u16, class: LatencyClass, ns: u64) {
        if !self.enabled() {
            return;
        }
        self.with_slot(slot, |s| s.hists.record(class, ns));
    }

    /// Commit fast-path combination: one lock for both the commit-latency
    /// sample and the `TxCommit` event.
    #[inline]
    pub fn record_commit(&self, slot: u16, latency_ns: u64) {
        if !self.enabled() {
            return;
        }
        let at_ns = self.now_ns();
        self.with_slot(slot, |s| {
            s.hists.commit.record(latency_ns);
            s.ring.push(TraceEvent {
                at_ns,
                slot,
                kind: EventKind::TxCommit { latency_ns },
            });
        });
    }

    /// Grace-scan combination (engine slot): the grace-duration sample and
    /// the `GraceScan` event under one lock.
    pub fn record_grace_scan(&self, period: u64, duration_ns: u64) {
        if !self.enabled() {
            return;
        }
        let at_ns = self.now_ns();
        let slot = self.engine_slot();
        self.with_slot(slot, |s| {
            s.hists.grace.record(duration_ns);
            s.ring.push(TraceEvent {
                at_ns,
                slot,
                kind: EventKind::GraceScan {
                    period,
                    duration_ns,
                },
            });
        });
    }

    /// Merge every slot's histograms and ring into one coherent snapshot
    /// (events sorted by timestamp). Driver fields are left unset — the
    /// runtime layer fills them in, since only it knows the driver mode.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut hists = LatencyHistograms::default();
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for cell in self.slots.iter() {
            let s = cell.lock().unwrap();
            hists.merge(&s.hists);
            events.extend(s.ring.iter_in_order().copied());
            dropped += s.ring.dropped();
        }
        events.sort_by_key(|e| (e.at_ns, e.slot));
        TelemetrySnapshot {
            enabled: self.enabled(),
            capacity: self.capacity,
            dropped,
            hists,
            events,
            driver_mode: None,
            driver_idle_wakeups: None,
        }
    }
}

/// A merged, instance-wide view of the telemetry at one moment: histograms
/// summed across slots, flight-recorder events interleaved by timestamp,
/// and (when the runtime fills them in) the grace driver's duty cycle.
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    /// Was recording enabled when the snapshot was taken?
    pub enabled: bool,
    /// Per-slot ring capacity of the instance.
    pub capacity: usize,
    /// Events lost to ring overwrites across all slots.
    pub dropped: u64,
    /// Histograms merged across every slot.
    pub hists: LatencyHistograms,
    /// All held events, oldest first (ties broken by slot).
    pub events: Vec<TraceEvent>,
    /// The runtime's grace-driver mode label (`"cooperative"` /
    /// `"background"`), filled by `Runtime::telemetry_snapshot`.
    pub driver_mode: Option<&'static str>,
    /// The background driver's idle wakeups so far (its duty-cycle
    /// numerator), when the runtime owns one.
    pub driver_idle_wakeups: Option<u64>,
}

impl TelemetrySnapshot {
    /// The governor decisions held in the snapshot, oldest first.
    pub fn governor_decisions(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.kind.is_governor_decision())
    }

    /// Render the snapshot as hand-rolled JSON, schema `bench_telemetry/v1`
    /// (the `BENCH_clocks.json` house style: no serde, numbers and strings
    /// only — booleans encode as 0/1 so the workspace's minimal structural
    /// validator covers every byte).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"bench_telemetry/v1\",\n");
        out.push_str(&format!("  \"enabled\": {},\n", u64::from(self.enabled)));
        out.push_str(&format!("  \"capacity\": {},\n", self.capacity));
        out.push_str(&format!("  \"dropped_events\": {},\n", self.dropped));
        out.push_str(&format!(
            "  \"driver\": {{\"mode\": \"{}\"{}}},\n",
            self.driver_mode.unwrap_or("unknown"),
            self.driver_idle_wakeups
                .map(|w| format!(", \"idle_wakeups\": {w}"))
                .unwrap_or_default()
        ));
        out.push_str("  \"histograms\": [\n");
        for (i, class) in LatencyClass::ALL.iter().enumerate() {
            let h = self.hists.get(*class);
            let q = h.quantiles();
            let sep = if i + 1 == LatencyClass::ALL.len() {
                ""
            } else {
                ","
            };
            let buckets = h
                .buckets()
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "    {{\"class\": \"{}\", \"count\": {}, \"sum_ns\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
                 \"buckets\": [{}]}}{sep}\n",
                class.label(),
                h.count(),
                h.sum(),
                q.p50,
                q.p90,
                q.p99,
                q.p999,
                buckets
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"events\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let sep = if i + 1 == self.events.len() { "" } else { "," };
            let mut row = format!(
                "    {{\"t_ns\": {}, \"slot\": {}, \"kind\": \"{}\"",
                e.at_ns,
                e.slot,
                e.kind.label()
            );
            for (name, value) in e.kind.fields() {
                row.push_str(&format!(", \"{name}\": {value}"));
            }
            row.push_str(&format!("}}{sep}\n"));
            out.push_str(&row);
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_edges() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 63);
        assert_eq!(LatencyHistogram::bucket_upper_edge(0), 1);
        assert_eq!(LatencyHistogram::bucket_upper_edge(1), 3);
        assert_eq!(LatencyHistogram::bucket_upper_edge(63), u64::MAX);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let mut h = LatencyHistogram::default();
        // 90 fast samples (bucket of 100ns = index 6, edge 127) and 10 slow
        // ones (bucket of 1_000_000ns = index 19, edge 1_048_575).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let q = h.quantiles();
        assert_eq!(q.p50, 127);
        assert_eq!(q.p90, 127);
        assert_eq!(q.p99, (1 << 20) - 1);
        assert_eq!(q.p999, (1 << 20) - 1);
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 100 + 10 * 1_000_000);
        assert_eq!(LatencyHistogram::default().quantile(0.5), 0, "empty: 0");
    }

    /// The merge-forgets-new-field guard, `Stats` style: merging a default
    /// into an exhaustive literal must reproduce it exactly. A bucket or a
    /// counter a future PR adds to `LatencyHistogram` but forgets in
    /// `merge` fails the equality; a new *field* breaks this literal at
    /// compile time.
    #[test]
    fn histogram_merge_into_default_is_identity() {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = i as u64 + 1;
        }
        let x = LatencyHistogram {
            buckets,
            count: buckets.iter().sum(),
            sum: 987_654,
        };
        let mut acc = LatencyHistogram::default();
        acc.merge(&x);
        assert_eq!(acc, x, "LatencyHistogram::merge must cover every field");
    }

    /// Same guard one level up: the exhaustive `LatencyHistograms` literal
    /// breaks at compile time when a class field is added, and the equality
    /// fails when `merge` forgets one.
    #[test]
    fn histograms_merge_into_default_is_identity() {
        let mut sample = LatencyHistogram::default();
        sample.record(17);
        sample.record(40_000);
        let mut other = LatencyHistogram::default();
        other.record(3);
        let x = LatencyHistograms {
            commit: sample,
            abort_gap: other,
            fence_wait: sample,
            grace: other,
            retry_sleep: sample,
        };
        let mut acc = LatencyHistograms::default();
        acc.merge(&x);
        assert_eq!(acc, x, "LatencyHistograms::merge must cover every field");
    }

    /// The per-class views the service harness reports through: every
    /// [`OpClass`] distribution must place known-latency synthetic samples
    /// in the right power-of-two bucket and report the documented bucket
    /// upper edges as its percentiles.
    #[test]
    fn op_class_percentiles_match_synthetic_samples() {
        let mut h = OpClassHistograms::default();
        // Per class: 98 samples at `base` ns and 2 at 1000*base ns, with a
        // distinct base per class so a routing bug (recording into the
        // wrong field) shifts a percentile and fails loudly.
        let bases: [(OpClass, u64); 5] = [
            (OpClass::Get, 100),
            (OpClass::Put, 300),
            (OpClass::Rmw, 900),
            (OpClass::Scan, 20_000),
            (OpClass::Publish, 500),
        ];
        for (class, base) in bases {
            for _ in 0..98 {
                h.record(class, base);
            }
            for _ in 0..2 {
                h.record(class, 1000 * base);
            }
        }
        for (class, base) in bases {
            let hist = h.get(class);
            assert_eq!(hist.count(), 100, "{}", class.label());
            assert_eq!(hist.sum(), 98 * base + 2 * 1000 * base, "{}", class.label());
            let q = hist.quantiles();
            let fast_edge =
                LatencyHistogram::bucket_upper_edge(LatencyHistogram::bucket_index(base));
            let slow_edge =
                LatencyHistogram::bucket_upper_edge(LatencyHistogram::bucket_index(1000 * base));
            // Ranks: p50 → 50th, p99 → 99th (the first slow sample),
            // p999 → 100th — quantiles report bucket upper edges.
            assert_eq!(q.p50, fast_edge, "{}", class.label());
            assert_eq!(q.p90, fast_edge, "{}", class.label());
            assert_eq!(q.p99, slow_edge, "{}", class.label());
            assert_eq!(q.p999, slow_edge, "{}", class.label());
        }
        assert_eq!(h.total_count(), 500);
        let labels: Vec<&str> = OpClass::ALL.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "op-class labels are distinct");
    }

    /// The merge-forgets-new-field guard for the op-class views: the
    /// exhaustive literal breaks at compile time when a class field is
    /// added, and the equality fails when `merge` forgets one.
    #[test]
    fn op_class_merge_into_default_is_identity() {
        let mut a = LatencyHistogram::default();
        a.record(64);
        let mut b = LatencyHistogram::default();
        b.record(1024);
        b.record(5);
        let x = OpClassHistograms {
            get: a,
            put: b,
            rmw: a,
            scan: b,
            publish: a,
        };
        let mut acc = OpClassHistograms::default();
        acc.merge(&x);
        assert_eq!(acc, x, "OpClassHistograms::merge must cover every field");
        // Merging twice doubles every count — the per-client fold the
        // service report relies on.
        acc.merge(&x);
        assert_eq!(acc.total_count(), 2 * x.total_count());
    }

    /// A `TelemetrySnapshot` built from known-latency synthetic samples
    /// must report the documented bucket-edge percentiles per runtime
    /// class — the same guarantee the op-class views give the service.
    #[test]
    fn snapshot_percentiles_match_synthetic_samples() {
        let t = Telemetry::new(2, TraceConfig::with_capacity(8));
        // 9 fast + 1 slow commit sample, split across two slots: the
        // merged snapshot must see one distribution.
        for _ in 0..5 {
            t.record_latency(0, LatencyClass::Commit, 200);
        }
        for _ in 0..4 {
            t.record_latency(1, LatencyClass::Commit, 200);
        }
        t.record_latency(1, LatencyClass::Commit, 3_000_000);
        let s = t.snapshot();
        let q = s.hists.commit.quantiles();
        assert_eq!(s.hists.commit.count(), 10);
        let fast_edge = LatencyHistogram::bucket_upper_edge(LatencyHistogram::bucket_index(200));
        let slow_edge =
            LatencyHistogram::bucket_upper_edge(LatencyHistogram::bucket_index(3_000_000));
        assert_eq!(q.p50, fast_edge);
        assert_eq!(q.p90, fast_edge, "rank 9 of 10 is still a fast sample");
        assert_eq!(q.p99, slow_edge, "rank 10 of 10 is the slow sample");
        assert_eq!(q.p999, slow_edge);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = TraceRing::new(3);
        let ev = |n: u64| TraceEvent {
            at_ns: n,
            slot: 0,
            kind: EventKind::TxBegin,
        };
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 0);
        let order: Vec<u64> = r.iter_in_order().map(|e| e.at_ns).collect();
        assert_eq!(order, vec![1, 2], "pre-wrap order is insertion order");
        r.push(ev(3));
        r.push(ev(4));
        r.push(ev(5));
        assert_eq!(r.len(), 3, "capacity bounds the ring");
        assert_eq!(r.dropped(), 2, "two events were overwritten");
        let order: Vec<u64> = r.iter_in_order().map(|e| e.at_ns).collect();
        assert_eq!(order, vec![3, 4, 5], "oldest-first after wrapping");
        let mut z = TraceRing::new(0);
        z.push(ev(9));
        assert!(z.is_empty(), "zero-capacity ring records nothing");
    }

    #[test]
    fn trace_config_grammar() {
        assert_eq!(TraceConfig::parse(None).capacity, 1024, "default on");
        assert!(TraceConfig::parse(None).is_enabled());
        assert!(!TraceConfig::parse(Some("off")).is_enabled());
        assert!(!TraceConfig::parse(Some("0")).is_enabled());
        assert_eq!(TraceConfig::parse(Some("256")).capacity, 256);
        assert_eq!(TraceConfig::parse(Some(" 64 ")).capacity, 64);
        assert_eq!(
            TraceConfig::parse(Some("banana")).capacity,
            TraceConfig::DEFAULT_CAPACITY,
            "unparsable falls back to the default, not to off"
        );
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let t = Telemetry::new(2, TraceConfig::off());
        assert!(!t.enabled());
        t.record_event(0, EventKind::TxBegin);
        t.record_latency(1, LatencyClass::Commit, 55);
        t.record_commit(0, 99);
        t.record_grace_scan(1, 1000);
        let s = t.snapshot();
        assert!(!s.enabled);
        assert!(s.events.is_empty());
        assert_eq!(s.hists.commit.count(), 0);
        assert_eq!(s.hists.grace.count(), 0);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn snapshot_merges_slots_and_sorts_events() {
        let t = Telemetry::new(2, TraceConfig::with_capacity(16));
        t.record_commit(1, 200);
        t.record_commit(0, 100);
        t.record_latency(0, LatencyClass::FenceWait, 30);
        t.record_grace_scan(7, 4000);
        let s = t.snapshot();
        assert!(s.enabled);
        assert_eq!(s.hists.commit.count(), 2, "commit samples merge");
        assert_eq!(s.hists.commit.sum(), 300);
        assert_eq!(s.hists.fence_wait.count(), 1);
        assert_eq!(s.hists.grace.count(), 1);
        assert_eq!(s.events.len(), 3, "2 commits + 1 grace scan");
        assert!(
            s.events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
            "events are timestamp-sorted"
        );
        assert_eq!(
            s.events
                .iter()
                .filter(|e| e.slot == t.engine_slot())
                .count(),
            1,
            "the grace scan landed on the engine slot"
        );
    }

    #[test]
    fn event_labels_and_fields_cover_the_taxonomy() {
        let all = [
            EventKind::TxBegin,
            EventKind::TxCommit { latency_ns: 1 },
            EventKind::TxAbort {
                cause: AbortCause::Lock,
            },
            EventKind::FenceIssue { period: 2 },
            EventKind::FenceRetire { period: 2 },
            EventKind::GraceScan {
                period: 2,
                duration_ns: 3,
            },
            EventKind::ClockSwitchRequest {
                to_gv5: true,
                read_commits: 4,
                write_commits: 124,
            },
            EventKind::ClockSwitchSettle { to_gv5: true },
            EventKind::StripePublish {
                grow: true,
                from_stripes: 4,
                to_stripes: 8,
                false_conflicts: 9,
                window: 128,
            },
            EventKind::StripeRetire { stripes: 8 },
            EventKind::Escalation {
                attempts: 5,
                deadline_expired: false,
            },
            EventKind::RetryWake {
                reg: 6,
                slept_ns: 12_000,
            },
            EventKind::StallReport {
                stalled_slot: 3,
                pinned_ns: 7_000_000,
                period: 2,
            },
        ];
        let labels: Vec<&str> = all.iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "labels are distinct");
        let governor = all.iter().filter(|k| k.is_governor_decision()).count();
        assert_eq!(governor, 4, "the four governor decision kinds");
        for k in &all {
            for (name, _) in k.fields() {
                assert!(!name.is_empty());
            }
        }
        assert_eq!(AbortCause::User.label(), "user");
        assert_eq!(AbortCause::Panic.label(), "panic");
        assert!(
            !EventKind::StallReport {
                stalled_slot: 0,
                pinned_ns: 0,
                period: 0,
            }
            .is_governor_decision(),
            "hardening events are not governor decisions"
        );
    }

    #[test]
    fn json_has_schema_and_event_payloads() {
        let t = Telemetry::new(1, TraceConfig::with_capacity(8));
        t.record_commit(0, 150);
        t.record_event(
            0,
            EventKind::ClockSwitchRequest {
                to_gv5: true,
                read_commits: 0,
                write_commits: 128,
            },
        );
        let mut s = t.snapshot();
        s.driver_mode = Some("background");
        s.driver_idle_wakeups = Some(5);
        let json = s.to_json();
        assert!(json.contains("\"schema\": \"bench_telemetry/v1\""));
        assert!(json.contains("\"class\": \"commit\""));
        assert!(json.contains("\"kind\": \"clock-switch-request\""));
        assert!(json.contains("\"write_commits\": 128"));
        assert!(json.contains("\"mode\": \"background\""));
        assert!(json.contains("\"idle_wakeups\": 5"));
    }
}
