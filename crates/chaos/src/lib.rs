//! Seeded, deterministic fault injection for the STM runtime.
//!
//! The hardening layer in `tm-stm` (panic-safe unwind paths, retry budgets
//! with irrevocable fallback, stall detection) is only as trustworthy as the
//! tests that exercise it. This crate plants **injection sites** at the four
//! places where an STM actually fails in production — lock acquisition,
//! validation, clock bumps, and grace-period scans — and lets a seeded
//! generator force the rare outcomes (a lost lock race, a failed validation,
//! a descheduled thread) on demand, deterministically enough that the full
//! conformance suite can run under injection and still assert bit-identical
//! final states and checker verdicts.
//!
//! Three fault kinds:
//!
//! - **Forced aborts** (`should_abort`) — the site behaves exactly as if the
//!   real conflict happened: the policy walks its ordinary abort path
//!   (releasing any locks it took) and the retry loop retries. Semantically
//!   invisible: a forced abort is indistinguishable from a lost race, so
//!   finals and verdicts are unchanged.
//! - **Injected delays** (`maybe_delay`) — a bounded burst of yields at the
//!   site, widening the race windows the paper's privatization argument has
//!   to survive (e.g. a grace scan descheduled mid-snapshot).
//! - **One-shot panics** (`arm_panic` / `check_panic`) — a countdown armed by
//!   a test; the n-th visit to the site panics, driving the unwind through
//!   whatever state the site holds (write-set locks, the epoch slot). These
//!   are never armed by the environment knob: a panic escapes `atomic` by
//!   design, so only a harness that expects the unwind may arm one.
//!
//! Decisions are pure functions of `(seed, site, visit-counter)` via
//! splitmix64, so a given seed always injects the same faults at the same
//! visit numbers; only the thread interleaving (which was never deterministic)
//! decides which transaction draws which visit.
//!
//! **Disabled cost.** Injection is off unless constructed with a seed; every
//! site then costs exactly one relaxed load of the `enabled` flag (the same
//! contract — and the same test technique — as `tm-telemetry`'s disabled
//! path).
//!
//! Enable process-wide via `TM_STM_CHAOS=<seed>` (decimal or `0x`-hex),
//! or per-runtime through `StmConfig` in `tm-stm`.

#![warn(missing_docs)]

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Where a fault may be injected. Each variant is one hazard class from the
/// runtime's hardening argument; together they cover every place the
/// production failure modes (lost races, torn timing, stalled scans) enter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Site {
    /// A commit-time attempt to take a write-set lock (TL2 orec, NOrec
    /// sequence-lock CAS). Forced abort = "somebody else held it".
    LockAcquire = 0,
    /// A read-set validation check (TL2 read/commit validation, NOrec
    /// value-based validation). Forced abort = "a writer got in between".
    Validate = 1,
    /// A global version-clock bump. Only delays and panics here — a clock
    /// bump has no abort path; stretching it widens the window between a
    /// writer's stamp and its write-back.
    ClockBump = 2,
    /// A grace-period scan step in `tm-quiesce`. Only delays and panics — a
    /// descheduled scanner is exactly the stall the detector must notice.
    GraceScan = 3,
}

/// Number of distinct injection sites (array sizing).
pub const NSITES: usize = 4;

impl Site {
    /// All sites, for iteration in tests and reports.
    pub const ALL: [Site; NSITES] = [
        Site::LockAcquire,
        Site::Validate,
        Site::ClockBump,
        Site::GraceScan,
    ];

    /// Stable lowercase label (telemetry, logs, reports).
    pub fn label(&self) -> &'static str {
        match self {
            Site::LockAcquire => "lock_acquire",
            Site::Validate => "validate",
            Site::ClockBump => "clock_bump",
            Site::GraceScan => "grace_scan",
        }
    }
}

/// splitmix64 — the repo's standard deterministic mixer (same constants as
/// the proptest shim), used here to turn `(seed, site, visit)` into a fault
/// decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Injection odds, in "1 in N visits" terms. Aborts are rarer than delays so
/// a chaos conformance run converges in reasonable wall-clock time even on a
/// retry-happy backend; both are frequent enough that every scenario draws
/// faults at every site.
const ABORT_ONE_IN: u64 = 24;
const DELAY_ONE_IN: u64 = 16;
/// Maximum injected delay, in `yield_now` calls.
const MAX_DELAY_YIELDS: u64 = 3;

/// Per-site state: a visit counter (the deterministic input) and a one-shot
/// panic countdown (0 = disarmed). Padded so two hot sites never share a
/// cache line.
#[derive(Default)]
struct SiteState {
    visits: AtomicU64,
    panic_after: AtomicU64,
    injected_aborts: AtomicU64,
    injected_delays: AtomicU64,
}

/// A fault-injection plan: either inert (no seed — every query is one relaxed
/// load returning "no fault") or armed with a seed that fully determines
/// which visit numbers of each site draw which fault.
pub struct Chaos {
    enabled: AtomicBool,
    seed: u64,
    sites: [CachePadded<SiteState>; NSITES],
}

impl Chaos {
    /// An inert plan: every site query is a single relaxed load.
    pub fn off() -> Arc<Chaos> {
        Arc::new(Chaos {
            enabled: AtomicBool::new(false),
            seed: 0,
            sites: Default::default(),
        })
    }

    /// A plan armed with `seed`. The same seed injects the same faults at
    /// the same visit numbers of each site, process after process.
    pub fn seeded(seed: u64) -> Arc<Chaos> {
        Arc::new(Chaos {
            enabled: AtomicBool::new(true),
            seed,
            sites: Default::default(),
        })
    }

    /// Build from an optional seed (`None` = inert).
    pub fn new(seed: Option<u64>) -> Arc<Chaos> {
        match seed {
            Some(s) => Chaos::seeded(s),
            None => Chaos::off(),
        }
    }

    /// Is injection armed? One relaxed load — the entire disabled-path cost
    /// of every site.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The seed this plan was armed with (0 when inert).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Should this visit to `site` behave as if the real conflict happened?
    /// The caller must walk its ordinary abort path (releasing anything it
    /// holds) when this returns `true`. Inert plans always say `false` after
    /// one relaxed load.
    #[inline]
    pub fn should_abort(&self, site: Site) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        self.should_abort_slow(site)
    }

    #[cold]
    fn should_abort_slow(&self, site: Site) -> bool {
        let s = &self.sites[site as usize];
        self.check_panic(site);
        let visit = s.visits.fetch_add(1, Ordering::Relaxed);
        let roll = mix(self.seed ^ (site as u64) << 32 ^ visit);
        if roll.is_multiple_of(ABORT_ONE_IN) {
            s.injected_aborts.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Maybe stall this visit to `site` for a bounded burst of scheduler
    /// yields. Inert plans return immediately after one relaxed load.
    #[inline]
    pub fn maybe_delay(&self, site: Site) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.maybe_delay_slow(site);
    }

    #[cold]
    fn maybe_delay_slow(&self, site: Site) {
        let s = &self.sites[site as usize];
        self.check_panic(site);
        let visit = s.visits.fetch_add(1, Ordering::Relaxed);
        let roll = mix(self.seed ^ 0xDE1A ^ (site as u64) << 32 ^ visit);
        if roll.is_multiple_of(DELAY_ONE_IN) {
            s.injected_delays.fetch_add(1, Ordering::Relaxed);
            for _ in 0..=(roll >> 8) % MAX_DELAY_YIELDS {
                std::thread::yield_now();
            }
        }
    }

    /// Arm a one-shot panic: the `after`-th subsequent visit to `site`
    /// (1 = the very next) panics with a recognizable message. Test-only by
    /// design — the environment knob never arms these, because the panic
    /// escapes `atomic` after the runtime's cleanup and only a harness that
    /// expects the unwind may observe it.
    pub fn arm_panic(&self, site: Site, after: u64) {
        assert!(after > 0, "a zero countdown means disarmed");
        self.enabled.store(true, Ordering::Relaxed);
        self.sites[site as usize]
            .panic_after
            .store(after, Ordering::Relaxed);
    }

    /// Tick the one-shot panic countdown for `site`; panics when it hits
    /// zero. Called internally by `should_abort`/`maybe_delay`; sites that
    /// query neither (pure panic points) may call it directly.
    #[inline]
    pub fn check_panic(&self, site: Site) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let armed = &self.sites[site as usize].panic_after;
        let mut cur = armed.load(Ordering::Relaxed);
        while cur > 0 {
            match armed.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(1) => panic!("tm-chaos: injected panic at {}", site.label()),
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// How many forced aborts this plan has injected at `site`.
    pub fn injected_aborts(&self, site: Site) -> u64 {
        self.sites[site as usize]
            .injected_aborts
            .load(Ordering::Relaxed)
    }

    /// How many delays this plan has injected at `site`.
    pub fn injected_delays(&self, site: Site) -> u64 {
        self.sites[site as usize]
            .injected_delays
            .load(Ordering::Relaxed)
    }

    /// Total faults injected across all sites (smoke assertion that a seeded
    /// run actually exercised the harness).
    pub fn injected_total(&self) -> u64 {
        Site::ALL
            .iter()
            .map(|&s| self.injected_aborts(s) + self.injected_delays(s))
            .sum()
    }
}

/// Parse a `TM_STM_CHAOS`-style value: decimal or `0x`-prefixed hex seed.
/// Empty / `off` / `0`-free garbage disables injection (returns `None`) —
/// the knob must never turn a typo into a silent no-op *enable*.
pub fn parse(val: &str) -> Option<u64> {
    let v = val.trim();
    if v.is_empty() || v.eq_ignore_ascii_case("off") {
        return None;
    }
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse::<u64>().ok()
    }
}

/// The process-wide seed from `TM_STM_CHAOS`, read once. `None` when unset
/// or unparsable.
pub fn seed_from_env() -> Option<u64> {
    static SEED: OnceLock<Option<u64>> = OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("TM_STM_CHAOS")
            .ok()
            .as_deref()
            .and_then(parse)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_injects() {
        let c = Chaos::off();
        assert!(!c.enabled());
        for _ in 0..10_000 {
            assert!(!c.should_abort(Site::LockAcquire));
            c.maybe_delay(Site::GraceScan);
        }
        assert_eq!(c.injected_total(), 0);
    }

    #[test]
    fn seeded_decisions_are_deterministic_and_site_local() {
        let a = Chaos::seeded(42);
        let b = Chaos::seeded(42);
        let da: Vec<bool> = (0..4096).map(|_| a.should_abort(Site::Validate)).collect();
        let db: Vec<bool> = (0..4096).map(|_| b.should_abort(Site::Validate)).collect();
        assert_eq!(da, db, "same seed, same site, same visit => same decision");
        assert!(da.iter().any(|&x| x), "the rate is high enough to fire");
        // A different site draws a different (but equally deterministic)
        // sequence from the same seed.
        let c = Chaos::seeded(42);
        let dc: Vec<bool> = (0..4096)
            .map(|_| c.should_abort(Site::LockAcquire))
            .collect();
        assert_ne!(da, dc);
    }

    #[test]
    fn different_seeds_draw_different_faults() {
        let a = Chaos::seeded(1);
        let b = Chaos::seeded(2);
        let da: Vec<bool> = (0..4096).map(|_| a.should_abort(Site::Validate)).collect();
        let db: Vec<bool> = (0..4096).map(|_| b.should_abort(Site::Validate)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn one_shot_panic_fires_exactly_once_at_the_armed_visit() {
        let c = Chaos::seeded(7);
        c.arm_panic(Site::ClockBump, 3);
        c.check_panic(Site::ClockBump);
        c.check_panic(Site::ClockBump);
        let r = std::panic::catch_unwind(|| c.check_panic(Site::ClockBump));
        assert!(r.is_err(), "third visit panics");
        // Disarmed afterwards.
        c.check_panic(Site::ClockBump);
    }

    #[test]
    fn parse_accepts_decimal_hex_and_rejects_noise() {
        assert_eq!(parse("42"), Some(42));
        assert_eq!(parse("0xC0FFEE"), Some(0xC0FFEE));
        assert_eq!(parse(" 0XFF "), Some(255));
        assert_eq!(parse(""), None);
        assert_eq!(parse("off"), None);
        assert_eq!(parse("not-a-seed"), None);
    }

    #[test]
    fn delays_are_counted() {
        let c = Chaos::seeded(99);
        for _ in 0..4096 {
            c.maybe_delay(Site::GraceScan);
        }
        assert!(c.injected_delays(Site::GraceScan) > 0);
    }
}
