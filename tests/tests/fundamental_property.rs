//! E13 — the Fundamental Property (Theorem 5.3), validated concretely.
//!
//! For every DRF litmus program: every explored TL2-spec trace has a DRF
//! history (Lemma 5.4(2)), every such history is strongly opaque with a
//! verified witness in `H_atomic` (Theorem 6.5 / Lemma 6.4), the rearranged
//! trace is observationally equivalent (Lemma B.1), and the program's
//! outcome set under TL2 is contained in the strongly atomic outcome set.

use tm_integration::validate_fundamental_property;
use tm_lang::explorer::Limits;
use tm_lang::prelude::*;
use tm_litmus::programs;
use tm_litmus::{run, TmKind};

const TRACE_CAP: usize = 1_500;

#[test]
fn fp_fig1a_fenced() {
    let s = validate_fundamental_property(&programs::fig1a(true), TRACE_CAP);
    assert_eq!(s.terminal_traces, s.witnesses_verified);
    assert_eq!(s.terminal_traces, s.rearrangements_verified);
}

#[test]
fn fp_fig1b_fenced() {
    let s = validate_fundamental_property(&programs::fig1b(true), TRACE_CAP);
    assert_eq!(s.terminal_traces, s.witnesses_verified);
}

#[test]
fn fp_fig2_publication() {
    let s = validate_fundamental_property(&programs::fig2(), TRACE_CAP);
    assert_eq!(s.terminal_traces, s.witnesses_verified);
}

#[test]
fn fp_fig6_agreement() {
    let s = validate_fundamental_property(&programs::fig6(), TRACE_CAP);
    assert_eq!(s.terminal_traces, s.witnesses_verified);
}

#[test]
fn fp_privatize_modify_publish() {
    let s = validate_fundamental_property(&programs::privatize_modify_publish(true), TRACE_CAP);
    assert_eq!(s.terminal_traces, s.witnesses_verified);
}

/// Observational refinement at the outcome level: for every DRF litmus, the
/// TL2 outcome set is a subset of the strongly atomic outcome set, and the
/// postcondition (verified under strong atomicity) transfers to TL2.
#[test]
fn outcome_refinement_for_drf_programs() {
    let limits = Limits::default();
    for l in programs::all().into_iter().filter(|l| l.expect_drf) {
        let atomic = run(
            &l,
            TmKind::Atomic {
                spurious_aborts: true,
            },
            &limits,
        );
        assert!(
            atomic.passed(l.divergence),
            "{}: postcondition must hold under strong atomicity: {atomic:?}",
            l.name
        );
        let tl2 = run(
            &l,
            TmKind::Tl2 {
                implicit_fence: ImplicitFence::None,
            },
            &limits,
        );
        assert!(
            tl2.passed(l.divergence),
            "{}: Fundamental Property violated under TL2: {tl2:?}",
            l.name
        );
        let glock = run(&l, TmKind::Glock, &limits);
        assert!(
            glock.passed(l.divergence),
            "{}: global-lock TM violated a DRF program: {glock:?}",
            l.name
        );
    }
}
