//! Property-based differential test for the service store: random op
//! sequences from the service's taxonomy (get / put / rmw / remove /
//! privatize-and-scan) run single-threaded through `ShardedKv` on every
//! backend — under both grace-period driver modes and under one seeded
//! chaos configuration — and the final store contents must equal a
//! sequential `HashMap` reference model's, entry for entry. The scans
//! exercise the freeze → fence → uninstrumented-read → thaw path on
//! every backend (their double-read stability check must report zero
//! anomalies), so the privatization machinery is inside the differential
//! loop, not beside it.

use std::collections::HashMap;

use proptest::prelude::*;
use tm_litmus::concrete::Backend;
use tm_service::{Op, ShardedKv};
use tm_stm::prelude::*;
use tm_stm::runtime::{PolicyKind, Stm, StmConfig};

const SHARDS: usize = 2;
const KEYS_PER_SHARD: u64 = 8;
const KEY_SPACE: u64 = SHARDS as u64 * KEYS_PER_SHARD;

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..KEY_SPACE).prop_map(|key| Op::Get { key }),
            (0..KEY_SPACE, 1u64..1_000_000).prop_map(|(key, val)| Op::Put { key, val }),
            (0..KEY_SPACE, 1u64..1_000).prop_map(|(key, delta)| Op::Rmw { key, delta }),
            (0..KEY_SPACE).prop_map(|key| Op::Remove { key }),
            (0..SHARDS).prop_map(|shard| Op::Scan { shard }),
        ],
        1..32,
    )
}

/// Replay `ops` through a fresh store on `stm` and observe the final
/// contents (sorted), asserting the bulk readers saw a stable snapshot.
fn replay<K: PolicyKind>(stm: &Stm<K>, ops: &[Op], label: &str) -> Vec<(u64, u64)> {
    let kv = ShardedKv::new(0, SHARDS, KEYS_PER_SHARD);
    let mut h = stm.handle(0);
    for op in ops {
        op.apply(&kv, &mut h);
    }
    let (dump, anomalies) = kv.dump_all(&mut h);
    assert_eq!(anomalies, 0, "{label}: privatized reads must be stable");
    dump
}

/// One store-shaped config per run; `chaos` pins the deterministic fault
/// injector independent of the `TM_STM_CHAOS` environment.
fn config(mode: DriverMode, chaos: Option<u64>) -> StmConfig {
    let cfg = StmConfig::new(ShardedKv::regs_needed(SHARDS, KEYS_PER_SHARD), 1).grace_driver(mode);
    match chaos {
        Some(seed) => cfg.chaos_seed(seed),
        None => cfg,
    }
}

fn replay_backend(
    backend: Backend,
    mode: DriverMode,
    chaos: Option<u64>,
    ops: &[Op],
) -> Vec<(u64, u64)> {
    let cfg = config(mode, chaos);
    let label = format!("{}/{}/chaos={chaos:?}", backend.label(), mode.label());
    match backend {
        Backend::Tl2PerRegister => replay(&Tl2Stm::with_config(cfg), ops, &label),
        Backend::Tl2Striped { stripes } => {
            replay(&Tl2Stm::with_config(cfg.striped(stripes)), ops, &label)
        }
        Backend::Tl2Adaptive => replay(
            &Tl2Stm::with_config(cfg.adaptive_stripes(Backend::adaptive_policy())),
            ops,
            &label,
        ),
        Backend::Tl2Clock { clock } => replay(&Tl2Stm::with_config(cfg.clock(clock)), ops, &label),
        Backend::Tl2Auto => replay(
            &Tl2Stm::with_config(
                cfg.adaptive_stripes(Backend::adaptive_policy())
                    .clock(ClockKind::Auto),
            ),
            ops,
            &label,
        ),
        Backend::Norec => replay(&NorecStm::with_config(cfg), ops, &label),
        Backend::Glock => replay(&GlockStm::with_config(cfg), ops, &label),
    }
}

fn model_finals(ops: &[Op]) -> Vec<(u64, u64)> {
    let mut model = HashMap::new();
    for op in ops {
        op.apply_model(&mut model);
    }
    let mut expect: Vec<(u64, u64)> = model.into_iter().collect();
    expect.sort_unstable();
    expect
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every backend × both driver modes, plus one seeded-chaos replay per
    /// backend (forced aborts at the lock/validate/clock/grace sites must
    /// be invisible to the final state): all must agree with the
    /// sequential model.
    #[test]
    fn service_ops_match_sequential_model(ops in arb_ops()) {
        let expect = model_finals(&ops);
        for backend in Backend::ALL {
            for mode in DriverMode::ALL {
                let got = replay_backend(backend, mode, None, &ops);
                prop_assert_eq!(
                    &got, &expect,
                    "{}/{} diverges from the model", backend.label(), mode.label()
                );
            }
            let got = replay_backend(backend, DriverMode::Cooperative, Some(7), &ops);
            prop_assert_eq!(
                &got, &expect,
                "{}/chaos(7) diverges from the model", backend.label()
            );
        }
    }
}
