//! Randomized Fundamental-Property checking: generated programs whose
//! shared accesses are all transactional are trivially DRF (conflicts need a
//! non-transactional access, Def 3.1), so Theorem 5.3 promises that TL2's
//! and the undo TM's outcome sets refine the strongly atomic outcome set —
//! and that every TL2 history is strongly opaque. We verify both on random
//! programs.

use proptest::prelude::*;
use tm_core::hb::is_drf;
use tm_core::opacity::{check_strong_opacity, CheckOptions};
use tm_lang::explorer::{explore_outcomes, explore_traces, Limits, PathStatus};
use tm_lang::prelude::*;

/// A random transactional op.
#[derive(Clone, Debug)]
enum Op {
    Read(u32),
    Write(u32, u64),
}

fn arb_ops(max_regs: u32) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..max_regs).prop_map(Op::Read),
            (0..max_regs, 1u64..100).prop_map(|(x, v)| Op::Write(x, v)),
        ],
        1..4,
    )
}

/// Build one thread: a single atomic block from the ops, reading into fresh
/// locals so outcomes capture what was observed.
fn build_thread(ops: &[Op]) -> Com {
    let mut body = Vec::new();
    let mut next_var = 1u16;
    for op in ops {
        match op {
            Op::Read(x) => {
                body.push(read(Var(next_var), tm_core::ids::Reg(*x)));
                next_var += 1;
            }
            Op::Write(x, v) => body.push(write(tm_core::ids::Reg(*x), cst(*v))),
        }
    }
    atomic(Var(0), body)
}

fn limits() -> Limits {
    Limits {
        max_traces: 400,
        ..Limits::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TL2 and the undo TM refine strong atomicity on purely transactional
    /// programs (outcome-set inclusion).
    #[test]
    fn weak_tms_refine_atomic(ops0 in arb_ops(2), ops1 in arb_ops(2)) {
        let p = Program::new(vec![build_thread(&ops0), build_thread(&ops1)]).unwrap();
        let atomic_out =
            explore_outcomes(&p, AtomicOracle::new(p.nregs, 2, true), &limits());
        prop_assert!(!atomic_out.truncated);

        let tl2_out =
            explore_outcomes(&p, Tl2Spec::new(p.nregs, 2, Tl2Config::default()), &limits());
        for o in &tl2_out.outcomes {
            prop_assert!(
                atomic_out.outcomes.contains(o),
                "TL2 outcome {o:?} unreachable under strong atomicity"
            );
        }

        let undo_out = explore_outcomes(&p, UndoSpec::new(p.nregs, 2), &limits());
        for o in &undo_out.outcomes {
            prop_assert!(
                atomic_out.outcomes.contains(o),
                "undo-TM outcome {o:?} unreachable under strong atomicity"
            );
        }
    }

    /// Every TL2 history of a purely transactional program is DRF and
    /// strongly opaque (the TM-side contract, checked on random inputs).
    #[test]
    fn tl2_histories_opaque_on_random_programs(ops0 in arb_ops(2), ops1 in arb_ops(2)) {
        let p = Program::new(vec![build_thread(&ops0), build_thread(&ops1)]).unwrap();
        let mut checked = 0usize;
        explore_traces(
            &p,
            Tl2Spec::new(p.nregs, 2, Tl2Config::default()),
            &limits(),
            &mut |tr, status| {
                if status != PathStatus::Terminal || checked >= 120 {
                    return;
                }
                checked += 1;
                let h = tr.history();
                assert!(is_drf(&h), "purely transactional program produced a racy history");
                if let Err(e) = check_strong_opacity(&h, &CheckOptions::default()) {
                    panic!(
                        "TL2 history not strongly opaque: {e:?}\n{}",
                        tm_core::textio::to_text(&h)
                    );
                }
            },
        );
        prop_assert!(checked > 0);
    }
}
