//! E1, E2, E4, E14 — the paper's anomalies, demonstrated end to end.
//!
//! Racy or unfenced programs must exhibit exactly the published failures
//! under the weak TM, while the strongly atomic reference and the fenced
//! variants stay clean.

use tm_core::hb::is_drf;
use tm_core::opacity::{check_strong_opacity, CheckOptions};
use tm_lang::explorer::{explore_traces, Limits, PathStatus};
use tm_lang::prelude::*;
use tm_litmus::{check_drf_atomic, programs, run, Divergence, TmKind};

fn limits() -> Limits {
    Limits::default()
}

/// E1 — Fig 1(a): delayed commit. Unfenced: TL2 violates the postcondition;
/// the history that does so is racy (so the TM contract does not cover it).
/// Fenced: safe under every TM.
#[test]
fn delayed_commit_fig1a() {
    let unfenced = programs::fig1a(false);
    let atomic = run(
        &unfenced,
        TmKind::Atomic {
            spurious_aborts: true,
        },
        &limits(),
    );
    assert!(atomic.passed(unfenced.divergence));
    let tl2 = run(
        &unfenced,
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::None,
        },
        &limits(),
    );
    assert!(
        tl2.violations > 0,
        "delayed commit must be observable: {tl2:?}"
    );
    assert!(!check_drf_atomic(&unfenced, &limits()).drf);

    let fenced = programs::fig1a(true);
    assert!(check_drf_atomic(&fenced, &limits()).drf);
    for tm in [
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::None,
        },
        TmKind::Glock,
        TmKind::Atomic {
            spurious_aborts: true,
        },
    ] {
        let r = run(&fenced, tm, &limits());
        assert!(r.passed(fenced.divergence), "{tm:?}: {r:?}");
    }
}

/// E2 — Fig 1(b): doomed transaction. Unfenced TL2 diverges (zombie loop);
/// fenced TL2 and strong atomicity do not.
#[test]
fn doomed_transaction_fig1b() {
    let unfenced = programs::fig1b(false);
    let tl2 = run(
        &unfenced,
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::None,
        },
        &limits(),
    );
    assert!(tl2.diverged, "zombie loop expected: {tl2:?}");
    let atomic = run(
        &unfenced,
        TmKind::Atomic {
            spurious_aborts: true,
        },
        &limits(),
    );
    assert!(!atomic.diverged);

    let fenced = programs::fig1b(true);
    let tl2f = run(
        &fenced,
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::None,
        },
        &limits(),
    );
    assert!(!tl2f.diverged && tl2f.violations == 0, "{tl2f:?}");
}

/// E4 — Fig 3: the racy program. The DRF checker flags it (fences or not),
/// TL2 exhibits a non-strongly-atomic outcome, and at least one TL2 history
/// fails strong opacity — which the TM contract permits, because the history
/// is racy.
#[test]
fn racy_fig3() {
    for with_fence in [false, true] {
        let l = programs::fig3(with_fence);
        let drf = check_drf_atomic(&l, &limits());
        assert!(!drf.drf, "{}: must be racy (fences cannot help)", l.name);
    }
    let l = programs::fig3(false);
    let atomic = run(
        &l,
        TmKind::Atomic {
            spurious_aborts: true,
        },
        &limits(),
    );
    assert!(atomic.passed(Divergence::Forbidden));
    let tl2 = run(
        &l,
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::None,
        },
        &limits(),
    );
    assert!(tl2.violations > 0, "weak atomicity must show: {tl2:?}");

    // Among TL2 traces there is a racy history that is not strongly opaque,
    // and every non-opaque history is indeed racy (TM contract, Def 4.2).
    let p = &l.program;
    let mut racy_non_opaque = 0usize;
    let mut drf_non_opaque = 0usize;
    let lim = Limits {
        max_traces: 2_000,
        ..Limits::default()
    };
    explore_traces(
        p,
        Tl2Spec::new(p.nregs, p.nthreads(), Tl2Config::default()),
        &lim,
        &mut |tr, status| {
            if status != PathStatus::Terminal {
                return;
            }
            let h = tr.history();
            let opaque = check_strong_opacity(&h, &CheckOptions::default()).is_ok();
            match (is_drf(&h), opaque) {
                (false, false) => racy_non_opaque += 1,
                (true, false) => drf_non_opaque += 1,
                _ => {}
            }
        },
    );
    assert!(
        racy_non_opaque > 0,
        "expected racy non-opaque TL2 histories"
    );
    assert_eq!(drf_non_opaque, 0, "every DRF TL2 history must be opaque");
}

/// E14 — the GCC read-only fence elision bug class. With implicit
/// quiescence after every transaction the program is safe even without
/// explicit fences; skipping quiescence after read-only transactions
/// reintroduces the delayed-commit violation.
#[test]
fn gcc_readonly_fence_elision() {
    let l = programs::gcc_bug(false);
    // Correct implicit fencing: safe.
    let safe = run(
        &l,
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::AfterEvery,
        },
        &limits(),
    );
    assert!(
        safe.violations == 0,
        "implicit quiescence must protect: {safe:?}"
    );
    // Buggy elision after read-only transactions: the violation appears.
    let buggy = run(
        &l,
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::SkipReadOnly,
        },
        &limits(),
    );
    assert!(buggy.violations > 0, "the GCC bug must manifest: {buggy:?}");
    // No implicit fencing at all: also unsafe.
    let none = run(
        &l,
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::None,
        },
        &limits(),
    );
    assert!(none.violations > 0, "{none:?}");
    // The paper's discipline: an explicit fence after the read-only observer
    // makes the program DRF and safe under plain TL2.
    let fenced = programs::gcc_bug(true);
    assert!(check_drf_atomic(&fenced, &limits()).drf);
    let r = run(
        &fenced,
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::None,
        },
        &limits(),
    );
    assert!(r.passed(fenced.divergence), "{r:?}");
}

/// E6 — privatize–modify–publish (Sec 2.2): fenced variant safe everywhere;
/// unfenced variant racy and violated by TL2.
#[test]
fn privatize_modify_publish() {
    let unfenced = programs::privatize_modify_publish(false);
    assert!(!check_drf_atomic(&unfenced, &limits()).drf);
    let tl2 = run(
        &unfenced,
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::None,
        },
        &limits(),
    );
    assert!(tl2.violations > 0, "{tl2:?}");

    let fenced = programs::privatize_modify_publish(true);
    assert!(check_drf_atomic(&fenced, &limits()).drf);
    for tm in [
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::None,
        },
        TmKind::Glock,
    ] {
        let r = run(&fenced, tm, &limits());
        assert!(r.passed(fenced.divergence), "{tm:?}: {r:?}");
    }
}

/// E5 — Fig 6: privatization by agreement outside transactions is DRF and
/// safe under every TM, with no fences at all.
#[test]
fn agreement_fig6() {
    let l = programs::fig6();
    assert!(check_drf_atomic(&l, &limits()).drf);
    for tm in [
        TmKind::Atomic {
            spurious_aborts: true,
        },
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::None,
        },
        TmKind::Glock,
    ] {
        let r = run(&l, tm, &limits());
        assert!(r.passed(l.divergence), "{tm:?}: {r:?}");
    }
}

/// E3 — Fig 2: publication is DRF and safe everywhere (xpo;txwr edge).
#[test]
fn publication_fig2() {
    let l = programs::fig2();
    assert!(check_drf_atomic(&l, &limits()).drf);
    for tm in [
        TmKind::Atomic {
            spurious_aborts: true,
        },
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::None,
        },
        TmKind::Tl2 {
            implicit_fence: ImplicitFence::SkipReadOnly,
        },
        TmKind::Glock,
    ] {
        let r = run(&l, tm, &limits());
        assert!(r.passed(l.divergence), "{tm:?}: {r:?}");
    }
}
