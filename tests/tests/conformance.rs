//! Cross-backend conformance: the same concrete litmus scenarios (bank
//! transfer, privatization, publication, epoch-batch, reader-heavy,
//! long-transaction, map-rehash, reader-writer-handoff —
//! `tm_litmus::concrete`) run against TL2-per-register, TL2-striped,
//! TL2-adaptive, TL2 under the GV4 and GV5 version clocks, TL2-auto (the
//! contention governor owning both the table and the clock), NOrec, and
//! Glock through the shared `StmHandle`/`StmFactory` interface, asserting
//! identical final states and identical checker verdicts on the recorded
//! histories. Two axes must be invisible to every verdict:
//!
//! * the storage/clock axis (GV4's stamp sharing, GV5's shared-line-free
//!   stamping, and the adaptive table's mid-run generation rehashes may
//!   change scheduling and abort counts, never finals, DRF, or opacity),
//!   and
//! * the grace-period **driver** axis: every scenario runs under both
//!   `DriverMode::Cooperative` (waiters drive the engine) and
//!   `DriverMode::Background` (a runtime-owned driver thread retires
//!   periods with zero pollers) and must behave — and check out —
//!   bit-identically.
//!
//! Two documented exemptions: NOrec's and Glock's fences are no-ops (both
//! are privatization-safe *without* quiescing — NOrec by value-based
//! validation, paper Sec 8; Glock because every transaction runs entirely
//! under the global lock, admitting no zombies and no delayed commits), so
//! their histories carry no fence actions and the DRF discipline is not
//! obliged to classify their privatizing runs as race-free. Their
//! *behavior* (final state, no lost updates) must still match the fencing
//! backends exactly. And `Scenario::MapRehash` runs unrecorded on every
//! backend (`Scenario::records_cleanly`): `TxMap`'s fixed key/flag
//! encodings cannot satisfy Def A.1 clause 3 (globally unique write
//! values) under retries, so only behavioral conformance is asserted
//! there. `Scenario::TVarQueue` is unrecorded for the same structural
//! reason — the typed frontend's register writes are heap addresses, not
//! normalizable values — and additionally stakes a liveness claim: both
//! sides block via `Transaction::retry`, so a lost wakeup on any backend
//! deadlocks the suite instead of merely failing an assert.
//!
//! `Scenario::Service` is the suite's largest recorded scenario: the
//! `tm-service` workload shape (zipfian mixed traffic, an owner running
//! privatize-and-scan / publish-back maintenance) re-expressed over plain
//! registers with per-attempt nonced values precisely so it *can* record
//! cleanly where the full-scale harness cannot. `Scenario::PubUnderLoad`
//! covers the remaining ROADMAP scenario-space item: repeated
//! publication/re-privatization races under sustained reader traffic.

use tm_core::action::Kind;
use tm_litmus::concrete::{
    check, expected_finals, run_scenario, run_scenario_mode, Backend, Scenario, ScenarioRun,
};
use tm_stm::prelude::DriverMode;

fn conforming_runs(scenario: Scenario, mode: DriverMode) -> Vec<ScenarioRun> {
    Backend::ALL
        .iter()
        .map(|&b| run_scenario_mode(scenario, b, true, mode))
        .collect()
}

fn assert_conformance_mode(scenario: Scenario, mode: DriverMode) {
    let runs = conforming_runs(scenario, mode);

    // Behavioral conformance: no lost updates, bit-identical (projected)
    // final states, equal to the scenario's deterministic expectation.
    let expected = expected_finals(scenario);
    for run in &runs {
        let label = run.backend.label();
        assert_eq!(
            run.lost_updates,
            0,
            "{}/{label}/{}: lost updates",
            scenario.label(),
            mode.label()
        );
        assert_eq!(
            run.final_regs,
            expected,
            "{}/{label}/{}: final state diverges",
            scenario.label(),
            mode.label()
        );
    }
    for pair in runs.windows(2) {
        assert_eq!(
            pair[0].final_regs,
            pair[1].final_regs,
            "{}/{}: {} and {} disagree",
            scenario.label(),
            mode.label(),
            pair[0].backend.label(),
            pair[1].backend.label()
        );
    }

    // Checker conformance: every obligated backend's recorded history must
    // be well-formed, DRF, and strongly opaque — the same verdict triple.
    // (Scenarios that cannot record cleanly — MapRehash — were run
    // unrecorded; behavioral conformance above is their whole contract.)
    if !scenario.records_cleanly() {
        for run in &runs {
            assert!(run.history.is_none(), "unrecordable scenario recorded?");
        }
        return;
    }
    let mut obligated_verdicts = Vec::new();
    for run in &runs {
        let label = run.backend.label();
        let v = check(run.history.as_ref().expect("recorded run"));
        assert!(
            v.well_formed,
            "{}/{label}/{}: ill-formed history",
            scenario.label(),
            mode.label()
        );
        if scenario.uses_fences() && !run.backend.fences_are_real() {
            // NOrec/Glock on a privatizing scenario: behavior already
            // checked; the DRF contract does not cover fence-free
            // privatization.
            continue;
        }
        assert!(
            v.drf,
            "{}/{label}/{}: history must be DRF",
            scenario.label(),
            mode.label()
        );
        assert_eq!(
            v.opaque,
            Some(true),
            "{}/{label}/{}: DRF history must be strongly opaque",
            scenario.label(),
            mode.label()
        );
        obligated_verdicts.push((label, v));
    }
    for pair in obligated_verdicts.windows(2) {
        assert_eq!(
            pair[0].1,
            pair[1].1,
            "{}/{}: verdicts diverge between {} and {}",
            scenario.label(),
            mode.label(),
            pair[0].0,
            pair[1].0
        );
    }
}

/// Every scenario × every backend × both driver modes.
fn assert_conformance(scenario: Scenario) {
    for mode in DriverMode::ALL {
        assert_conformance_mode(scenario, mode);
    }
}

#[test]
fn bank_transfer_conforms_across_backends() {
    assert_conformance(Scenario::Bank);
}

#[test]
fn privatization_conforms_across_backends() {
    assert_conformance(Scenario::Privatization);
}

#[test]
fn publication_conforms_across_backends() {
    assert_conformance(Scenario::Publication);
}

/// The batched-fence scenario: K threads privatizing disjoint regions
/// through coalesced `fence_async` tickets must behave — and check out —
/// identically on every backend.
#[test]
fn epoch_batch_conforms_across_backends() {
    assert_conformance(Scenario::EpochBatch);
}

/// The read-dominated scenario: two auditors snapshotting a block one
/// writer keeps re-stamping. Exercises the read-path fast paths and, under
/// GV5, the trailing-reader refresh (the auditors' `rv` chases stamps that
/// never bump the shared clock).
#[test]
fn reader_heavy_conforms_across_backends() {
    assert_conformance(Scenario::ReaderHeavy);
}

/// The long-transaction scenario (ROADMAP): one transaction parks
/// mid-body while the owner fences around it. No driver — cooperative
/// pollers or the background thread — may retire the straddled grace
/// period early, on any backend.
#[test]
fn long_tx_conforms_across_backends() {
    assert_conformance(Scenario::LongTx);
}

/// The map-rehash scenario (ROADMAP): a `TxMap` workload whose staged
/// stripe-sharing conflicts force the adaptive orec table to grow
/// mid-traffic, settled by a freeze + privatized snapshot. Behavioral
/// conformance across every backend × driver mode (the scenario is
/// exempt from recording — see the module docs).
#[test]
fn map_rehash_conforms_across_backends() {
    assert_conformance(Scenario::MapRehash);
}

/// The reader-writer-handoff scenario (ROADMAP): block ownership
/// alternates writer → reader → writer each round, with privatization
/// fences in both directions.
#[test]
fn reader_writer_handoff_conforms_across_backends() {
    assert_conformance(Scenario::ReaderWriterHandoff);
}

/// The typed-frontend scenario: a bounded producer/consumer queue over a
/// `TVar<VecDeque<u64>>` with blocking `retry` on both full and empty.
/// Every backend must deliver all items exactly once, in FIFO order, with
/// an empty residual queue — and must *wake* the blocked side after every
/// conflicting commit (termination is part of the assertion).
#[test]
fn tvar_queue_conforms_across_backends() {
    assert_conformance(Scenario::TVarQueue);
}

/// The service scenario (tentpole): the end-to-end sharded KV workload
/// shape at conformance scale — two zipfian clients issuing the mixed op
/// class under flag guards while the owner cycles privatize-and-scan /
/// publish-back over both register shards and settles them under final
/// privatizations. The largest recorded scenario in the suite: checker
/// verdicts (well-formed, DRF, strongly opaque) must agree across all 8
/// backends × both driver modes, and the per-attempt nonce discipline
/// must hold under any retry schedule (the chaos CI pass reruns this
/// with forced aborts).
#[test]
fn service_conforms_across_backends() {
    assert_conformance(Scenario::Service);
}

/// The publication-under-load scenario (ROADMAP): fresh publication, then
/// privatize → rewrite → republish cycles, with two readers continuously
/// taking guarded snapshots. A reader pairing a published flag with the
/// wrong round's payload is a torn publication and fails the suite.
#[test]
fn pub_under_load_conforms_across_backends() {
    assert_conformance(Scenario::PubUnderLoad);
}

/// The adaptive acceptance bar: on `Backend::Tl2Adaptive`, MapRehash's
/// forced false-conflict rate must publish at least one doubled
/// generation — under both driver modes — while behaving exactly like
/// every fixed backend (asserted by the matrix test above), and the
/// fixed backends must never resize.
#[test]
fn map_rehash_grows_the_adaptive_table() {
    for mode in DriverMode::ALL {
        let run = run_scenario_mode(Scenario::MapRehash, Backend::Tl2Adaptive, false, mode);
        assert_eq!(run.lost_updates, 0, "{}", mode.label());
        let resizes = run
            .stripe_resizes
            .expect("adaptive backend reports resizes");
        assert!(
            resizes >= 1,
            "{}: the forced false-conflict rate must grow the table",
            mode.label()
        );
        let fixed = run_scenario_mode(Scenario::MapRehash, Backend::Tl2PerRegister, false, mode);
        assert_eq!(fixed.stripe_resizes, None, "fixed backends never resize");
        assert_eq!(run.final_regs, fixed.final_regs, "{}", mode.label());
    }
}

/// Recorded histories of the *recordable* scenarios must stay well-formed,
/// DRF, and opaque on the adaptive backend even though generation rehashes
/// happen mid-run — the resize machinery is invisible to the checkers.
#[test]
fn adaptive_backend_verdicts_match_fixed_tl2() {
    for scenario in [Scenario::Bank, Scenario::ReaderWriterHandoff] {
        let adaptive = run_scenario(scenario, Backend::Tl2Adaptive, true);
        let fixed = run_scenario(scenario, Backend::Tl2PerRegister, true);
        assert_eq!(
            adaptive.final_regs,
            fixed.final_regs,
            "{}",
            scenario.label()
        );
        let va = check(adaptive.history.as_ref().unwrap());
        let vf = check(fixed.history.as_ref().unwrap());
        assert_eq!(
            va,
            vf,
            "{}: verdicts must match fixed TL2",
            scenario.label()
        );
        assert!(va.well_formed && va.drf, "{}", scenario.label());
        assert_eq!(va.opaque, Some(true), "{}", scenario.label());
    }
}

/// The fence-mode decision for the global lock (see
/// `GlockPolicy::fence_mode`): glock is privatization-safe without
/// quiescing, so — like NOrec — it is exempt from the fence-based DRF
/// argument, and its privatizing histories must carry **no** fence
/// actions while still matching the fencing backends' behavior exactly.
#[test]
fn glock_fence_is_immediate_and_exempt_like_norec() {
    assert!(!Backend::Glock.fences_are_real());
    assert!(!Backend::Norec.fences_are_real());
    for scenario in [Scenario::Privatization, Scenario::LongTx] {
        let run = run_scenario(scenario, Backend::Glock, true);
        assert_eq!(run.lost_updates, 0, "{}", scenario.label());
        assert_eq!(
            run.final_regs,
            expected_finals(scenario),
            "{}",
            scenario.label()
        );
        let hist = run.history.as_ref().unwrap();
        assert!(
            hist.actions()
                .iter()
                .all(|a| !matches!(a.kind, Kind::FBegin | Kind::FEnd)),
            "{}: immediate fences must record no fence actions",
            scenario.label()
        );
    }
}

/// The striped backend must conform at extreme stripe counts too: a single
/// stripe (maximal false conflicts) and a large table.
#[test]
fn striped_extreme_stripe_counts_conform() {
    for (stripes, scenario) in [
        (1usize, Scenario::Bank),
        (1, Scenario::Privatization),
        (1024, Scenario::Bank),
    ] {
        {
            let run = run_scenario(scenario, Backend::Tl2Striped { stripes }, true);
            assert_eq!(
                run.lost_updates,
                0,
                "stripes={stripes} {}",
                scenario.label()
            );
            assert_eq!(
                run.final_regs,
                expected_finals(scenario),
                "stripes={stripes} {}",
                scenario.label()
            );
            let v = check(run.history.as_ref().unwrap());
            assert!(
                v.well_formed && v.drf,
                "stripes={stripes} {}",
                scenario.label()
            );
            assert_eq!(
                v.opaque,
                Some(true),
                "stripes={stripes} {}",
                scenario.label()
            );
        }
    }
}
