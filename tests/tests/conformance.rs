//! Cross-backend conformance: the same concrete litmus scenarios (bank
//! transfer, privatization, publication, epoch-batch, reader-heavy —
//! `tm_litmus::concrete`) run against TL2-per-register, TL2-striped,
//! TL2 under the GV4 and GV5 version clocks, NOrec, and Glock through the
//! shared `StmHandle`/`StmFactory` interface, asserting identical final
//! states and identical checker verdicts on the recorded histories. The
//! clock axis (like the storage axis) must be invisible to every verdict:
//! GV4's stamp sharing and GV5's shared-line-free stamping may change
//! scheduling and abort counts, never finals, DRF, or opacity.
//!
//! One documented exemption: NOrec's fence is a no-op (it is
//! privatization-safe *without* quiescing, paper Sec 8), so its histories
//! carry no fence actions and the DRF discipline is not obliged to classify
//! its privatizing runs as race-free. Its *behavior* (final state, no lost
//! updates) must still match the fencing backends exactly.

use tm_litmus::concrete::{check, expected_finals, run_scenario, Backend, Scenario, ScenarioRun};

fn conforming_runs(scenario: Scenario) -> Vec<ScenarioRun> {
    Backend::ALL
        .iter()
        .map(|&b| run_scenario(scenario, b, true))
        .collect()
}

fn assert_conformance(scenario: Scenario) {
    let runs = conforming_runs(scenario);

    // Behavioral conformance: no lost updates, bit-identical (projected)
    // final states, equal to the scenario's deterministic expectation.
    let expected = expected_finals(scenario);
    for run in &runs {
        let label = run.backend.label();
        assert_eq!(
            run.lost_updates,
            0,
            "{}/{label}: lost updates",
            scenario.label()
        );
        assert_eq!(
            run.final_regs,
            expected,
            "{}/{label}: final state diverges",
            scenario.label()
        );
    }
    for pair in runs.windows(2) {
        assert_eq!(
            pair[0].final_regs,
            pair[1].final_regs,
            "{}: {} and {} disagree",
            scenario.label(),
            pair[0].backend.label(),
            pair[1].backend.label()
        );
    }

    // Checker conformance: every obligated backend's recorded history must
    // be well-formed, DRF, and strongly opaque — the same verdict triple.
    let mut obligated_verdicts = Vec::new();
    for run in &runs {
        let label = run.backend.label();
        let v = check(run.history.as_ref().expect("recorded run"));
        assert!(
            v.well_formed,
            "{}/{label}: ill-formed history",
            scenario.label()
        );
        if scenario.uses_fences() && !run.backend.fences_are_real() {
            // NOrec on a privatizing scenario: behavior already checked;
            // the DRF contract does not cover fence-free privatization.
            continue;
        }
        assert!(v.drf, "{}/{label}: history must be DRF", scenario.label());
        assert_eq!(
            v.opaque,
            Some(true),
            "{}/{label}: DRF history must be strongly opaque",
            scenario.label()
        );
        obligated_verdicts.push((label, v));
    }
    for pair in obligated_verdicts.windows(2) {
        assert_eq!(
            pair[0].1,
            pair[1].1,
            "{}: verdicts diverge between {} and {}",
            scenario.label(),
            pair[0].0,
            pair[1].0
        );
    }
}

#[test]
fn bank_transfer_conforms_across_backends() {
    assert_conformance(Scenario::Bank);
}

#[test]
fn privatization_conforms_across_backends() {
    assert_conformance(Scenario::Privatization);
}

#[test]
fn publication_conforms_across_backends() {
    assert_conformance(Scenario::Publication);
}

/// The batched-fence scenario: K threads privatizing disjoint regions
/// through coalesced `fence_async` tickets must behave — and check out —
/// identically on every backend.
#[test]
fn epoch_batch_conforms_across_backends() {
    assert_conformance(Scenario::EpochBatch);
}

/// The read-dominated scenario: two auditors snapshotting a block one
/// writer keeps re-stamping. Exercises the read-path fast paths and, under
/// GV5, the trailing-reader refresh (the auditors' `rv` chases stamps that
/// never bump the shared clock).
#[test]
fn reader_heavy_conforms_across_backends() {
    assert_conformance(Scenario::ReaderHeavy);
}

/// The striped backend must conform at extreme stripe counts too: a single
/// stripe (maximal false conflicts) and a large table.
#[test]
fn striped_extreme_stripe_counts_conform() {
    for (stripes, scenario) in [
        (1usize, Scenario::Bank),
        (1, Scenario::Privatization),
        (1024, Scenario::Bank),
    ] {
        {
            let run = run_scenario(scenario, Backend::Tl2Striped { stripes }, true);
            assert_eq!(
                run.lost_updates,
                0,
                "stripes={stripes} {}",
                scenario.label()
            );
            assert_eq!(
                run.final_regs,
                expected_finals(scenario),
                "stripes={stripes} {}",
                scenario.label()
            );
            let v = check(run.history.as_ref().unwrap());
            assert!(
                v.well_formed && v.drf,
                "stripes={stripes} {}",
                scenario.label()
            );
            assert_eq!(
                v.opaque,
                Some(true),
                "stripes={stripes} {}",
                scenario.label()
            );
        }
    }
}
