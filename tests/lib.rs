//! Shared helpers for the cross-crate integration tests of the
//! Safe-Privatization-in-TM reproduction (see `tests/*.rs`).

use tm_core::atomic_tm::in_atomic_tm;
use tm_core::equiv::{observationally_equivalent, rearrange};
use tm_core::hb::is_drf;
use tm_core::opacity::{check_strong_opacity, CheckOptions};
use tm_core::trace::Trace;
use tm_lang::explorer::{explore_traces, Limits, PathStatus};
use tm_lang::prelude::*;
use tm_litmus::Litmus;

/// Statistics from validating the Fundamental Property on one program.
#[derive(Debug, Default)]
pub struct FpStats {
    pub terminal_traces: usize,
    pub drf_histories: usize,
    pub witnesses_verified: usize,
    pub rearrangements_verified: usize,
}

/// Validate Theorem 5.3 concretely for a litmus program: for every explored
/// TL2 trace (capped), its history must be DRF (Lemma 5.4(2), given the
/// program is DRF under strong atomicity), strongly opaque with a verified
/// witness in `H_atomic`, and the rearranged trace must be observationally
/// equivalent (Lemma B.1).
pub fn validate_fundamental_property(l: &Litmus, max_traces: usize) -> FpStats {
    assert!(l.expect_drf, "fundamental property applies to DRF programs");
    let p = &l.program;
    let cfg = Tl2Config::default();
    let oracle = Tl2Spec::new(p.nregs, p.nthreads(), cfg);
    let limits = Limits {
        max_traces,
        ..Limits::default()
    };
    let mut stats = FpStats::default();
    explore_traces(p, oracle, &limits, &mut |tr: Trace, status| {
        if status != PathStatus::Terminal {
            return;
        }
        stats.terminal_traces += 1;
        let h = tr.history();
        assert_eq!(h.validate(), Ok(()), "{}: ill-formed history", l.name);
        assert!(
            is_drf(&h),
            "{}: TL2 history racy though program is DRF under H_atomic\n{}",
            l.name,
            tm_core::textio::to_text(&h)
        );
        stats.drf_histories += 1;
        let w = match check_strong_opacity(&h, &CheckOptions::default()) {
            Ok(w) => w,
            Err(e) => panic!(
                "{}: TL2 history not strongly opaque: {e:?}\n{}",
                l.name,
                tm_core::textio::to_text(&h)
            ),
        };
        assert!(
            in_atomic_tm(&w.sequential).is_ok(),
            "{}: witness not in H_atomic",
            l.name
        );
        stats.witnesses_verified += 1;
        // Lemma B.1: rearrange the full trace along the witness.
        let ts = rearrange(&tr, &w.sequential);
        assert_eq!(
            ts.history().actions(),
            w.sequential.actions(),
            "{}: rearranged trace has the wrong history",
            l.name
        );
        assert!(
            observationally_equivalent(&tr, &ts),
            "{}: rearranged trace not observationally equivalent",
            l.name
        );
        stats.rearrangements_verified += 1;
    });
    assert!(
        stats.terminal_traces > 0,
        "{}: no terminal traces explored",
        l.name
    );
    stats
}
