//! Quickstart: the public API in five minutes.
//!
//! Run with: `cargo run -p tm-examples --bin quickstart`

use tm_stm::prelude::*;

fn main() {
    // A TL2 STM over 8 registers for 2 threads.
    let stm = Tl2Stm::new(8, 2);

    // --- Transactions -----------------------------------------------------
    let mut h = stm.handle(0);
    let sum = h.atomic(|tx| {
        tx.write(0, 40)?;
        tx.write(1, 2)?;
        Ok(tx.read(0)? + tx.read(1)?)
    });
    println!("transactional sum = {sum}");
    assert_eq!(sum, 42);

    // --- Concurrency: two threads transfer between registers --------------
    std::thread::scope(|s| {
        let stm1 = stm.clone();
        s.spawn(move || {
            let mut h = stm1.handle(1);
            for _ in 0..10_000 {
                h.atomic(|tx| {
                    let a = tx.read(0)?;
                    let b = tx.read(1)?;
                    if a > 0 {
                        tx.write(0, a - 1)?;
                        tx.write(1, b + 1)?;
                    }
                    Ok(())
                });
            }
        });
        for _ in 0..10_000 {
            h.atomic(|tx| {
                let a = tx.read(0)?;
                let b = tx.read(1)?;
                if b > 0 {
                    tx.write(1, b - 1)?;
                    tx.write(0, a + 1)?;
                }
                Ok(())
            });
        }
    });
    let mut h = stm.handle(0);
    let total = h.atomic(|tx| Ok(tx.read(0)? + tx.read(1)?));
    println!("after 20k transfers, total = {total}");
    assert_eq!(total, 42, "transfers conserve the total");

    // --- Privatization: the paper's contribution --------------------------
    // Register 3 is a flag guarding register 4. Set the flag inside a
    // transaction, then FENCE: wait until all transactions that might still
    // write register 4 have finished. After that, uninstrumented direct
    // access is safe (strong atomicity for DRF programs, Theorem 5.3).
    h.atomic(|tx| tx.write(3, 1)); // privatize
    h.fence(); //                  <- without this: delayed commit/doomed reads
    h.write_direct(4, 1234); //    fast, no TM metadata
    assert_eq!(h.read_direct(4), 1234);
    h.atomic(|tx| tx.write(3, 0)); // publish back; no fence needed (Fig 2)

    println!("privatized access done; stats: {:?}", h.stats());

    // --- Storage backends: per-register vs striped orecs ------------------
    // The same API scales to huge register files by swapping the lock
    // metadata layout: a striped orec table keeps a constant number of lock
    // words (here 256) however many registers the instance holds, at the
    // price of occasional false conflicts between stripe-sharing registers.
    let big = Tl2Stm::with_config(StmConfig::new(1 << 20, 2).striped(256));
    let mut h = big.handle(0);
    h.atomic(|tx| {
        tx.write(7, 1)?;
        tx.write(999_999, 2)
    });
    println!(
        "striped instance: {} registers guarded by {} lock words",
        1 << 20,
        big.nstripes()
    );
    assert_eq!(big.peek(999_999), 2);

    // --- Version clocks: GV1 / GV4 / GV5 ----------------------------------
    // The global version clock is pluggable too. GV5 keeps writing commits
    // off the shared clock line entirely (slot-local stamps): on this
    // write-only workload it records zero clock bumps, where GV1 pays one
    // shared-line fetch_add per commit.
    let gv5 = Tl2Stm::with_config(StmConfig::new(8, 2).clock(ClockKind::Gv5));
    let mut h = gv5.handle(0);
    for i in 0..100 {
        h.atomic(|tx| tx.write(0, i + 1));
    }
    println!(
        "gv5: {} commits, {} shared clock bumps",
        h.stats().commits,
        h.stats().clock_bumps
    );
    assert_eq!(h.stats().clock_bumps, 0);

    println!("ok");
}
