//! The paper's Fig 1 on real hardware: run the privatization idiom with and
//! without the transactional fence and count lost non-transactional writes
//! (the delayed commit problem).
//!
//! To make the race window realistic, the worker transaction writes a batch
//! of registers with the guarded register *last* in its (sorted) write set —
//! exactly the situation where commit write-back is still in flight when an
//! unfenced privatizer starts accessing the data directly.
//!
//! Run with: `cargo run --release -p tm-examples --bin privatization [rounds]`

use tm_stm::prelude::*;

const FLAG: usize = 0;
const DUMMIES: usize = 48; // registers 1..=DUMMIES pad the write-back
const DATA: usize = DUMMIES + 1; // written back last

/// One privatization experiment. Returns lost-update count observed by the
/// owner (a non-transactional write overwritten by a delayed commit).
fn run_rounds(rounds: u64, fenced: bool) -> u64 {
    let stm = Tl2Stm::new(DATA + 1, 2);
    let mut lost = 0;
    std::thread::scope(|s| {
        let stm1 = stm.clone();
        s.spawn(move || {
            let mut h = stm1.handle(1);
            for i in 1..=rounds {
                h.atomic(|tx| {
                    let flag = tx.read(FLAG)?;
                    if flag != 1 {
                        // Batch write: DATA is last in the sorted write set,
                        // so its write-back is maximally delayed.
                        for d in 1..=DUMMIES {
                            tx.write(d, i * 2)?;
                        }
                        tx.write(DATA, i * 2)?; // transactional (even)
                    }
                    Ok(())
                });
            }
        });
        let mut h = stm.handle(0);
        for i in 1..=rounds {
            // Shared phase: give workers time to get a batch in flight, so
            // privatization regularly lands mid-commit.
            let mut spin = 0u64;
            for k in 0..2_000u64 {
                spin = spin.wrapping_add(k);
            }
            std::hint::black_box(spin);
            h.atomic(|tx| tx.write(FLAG, 1)); // privatize
            if fenced {
                h.fence();
            }
            let marker = i * 2 + 1; // odd marker = non-transactional write
            h.write_direct(DATA, marker);
            // The private phase must be long enough that a delayed write-back
            // (which can trail by the whole write-set flush) lands inside it.
            let mut spin = 0u64;
            for k in 0..8_000u64 {
                spin = spin.wrapping_add(k);
            }
            std::hint::black_box(spin);
            if h.read_direct(DATA) != marker {
                lost += 1; // a delayed transactional commit overwrote ν
            }
            h.atomic(|tx| tx.write(FLAG, 2)); // publish back
            if fenced {
                h.fence();
            }
        }
    });
    lost
}

fn main() {
    let rounds: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);

    println!("Fig 1(a) — delayed commit on the concurrent TL2 ({rounds} rounds)\n");

    let lost_unfenced = run_rounds(rounds, false);
    println!(
        "without fence: {lost_unfenced} lost non-transactional writes \
         ({:.4}% of rounds)",
        100.0 * lost_unfenced as f64 / rounds as f64
    );
    if lost_unfenced == 0 {
        println!("  (the race is timing-dependent; rerun or raise rounds to catch it)");
    }

    let lost_fenced = run_rounds(rounds, true);
    println!("with fence:    {lost_fenced} lost non-transactional writes");
    assert_eq!(lost_fenced, 0, "the fence must make privatization safe");

    println!(
        "\nExpected shape (paper Fig 1): without the fence the delayed commit\n\
         problem loses ν's writes; with the fence the program is DRF and gets\n\
         strongly atomic semantics (Theorem 5.3) — zero losses, always."
    );
}
