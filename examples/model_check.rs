//! Model-check the paper's litmus programs end to end: DRF verdicts,
//! postcondition/divergence verdicts per TM, and strong-opacity spot checks
//! of TL2 histories — a compact tour of the whole framework.
//!
//! Run with: `cargo run --release -p tm-examples --bin model_check`

use tm_lang::explorer::Limits;
use tm_lang::prelude::ImplicitFence;
use tm_litmus::runner::spot_check_tl2_opacity;
use tm_litmus::{check_drf_atomic, programs, run, Divergence, TmKind};

fn main() {
    let limits = Limits::default();
    println!("== DRF and strong atomicity across TMs ==\n");
    for l in programs::all() {
        let drf = check_drf_atomic(&l, &limits);
        println!("{} — {}", l.name, l.description);
        println!(
            "  DRF under H_atomic: {} ({} maximal traces examined)",
            if drf.drf { "yes" } else { "NO — racy" },
            drf.traces
        );
        for tm in [
            TmKind::Atomic {
                spurious_aborts: true,
            },
            TmKind::Tl2 {
                implicit_fence: ImplicitFence::None,
            },
            TmKind::Glock,
        ] {
            let r = run(&l, tm, &limits);
            let verdict = if r.violations > 0 {
                format!("VIOLATED ({} bad outcomes)", r.violations)
            } else if r.diverged && l.divergence == Divergence::Forbidden {
                "DIVERGES (doomed transaction)".into()
            } else {
                "ok".into()
            };
            println!(
                "  {:<14} {:<30} [{} outcomes, {} states]",
                tm.label(),
                verdict,
                r.outcomes,
                r.states
            );
        }
        println!();
    }

    println!("== Strong opacity spot checks (TL2 histories, DRF programs) ==\n");
    for l in [
        programs::fig1a(true),
        programs::fig1b(true),
        programs::fig2(),
        programs::fig6(),
    ] {
        let (checked, failures) = spot_check_tl2_opacity(&l, ImplicitFence::None, 400);
        println!(
            "{:<18} {checked} DRF histories checked, {failures} opacity failures",
            l.name
        );
        assert_eq!(failures, 0, "strong opacity must hold on DRF histories");
    }
    println!("\nAll checks consistent with Theorem 5.3 (the Fundamental Property).");
}
