//! Shared nothing: the example binaries (`quickstart`, `privatization`,
//! `publication`, `model_check`, `bank`) are each self-contained; see the
//! files next to this one. This library target exists only so the package
//! has a root.
