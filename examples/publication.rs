//! The paper's Fig 2 (publication) and the combined
//! privatize–modify–publish idiom of Sec 2.2 on the real STM.
//!
//! Run with: `cargo run --release -p tm-examples --bin publication [trials]`

use tm_stm::prelude::*;

const FLAG: usize = 0;
const DATA: usize = 1;

/// One-shot Fig 2: t0 writes DATA non-transactionally then publishes FLAG in
/// a transaction; t1 keeps reading (FLAG, DATA) transactionally until the
/// flag is visible. If it sees the flag, it must see the data (the xpo;txwr
/// happens-before edge of Def 3.4 — no fence needed).
fn publication_trial(payload: u64) -> bool {
    let stm = Tl2Stm::new(2, 2);
    let mut ok = true;
    std::thread::scope(|s| {
        let stm1 = stm.clone();
        let consumer = s.spawn(move || {
            let mut h = stm1.handle(1);
            loop {
                let seen = h.atomic(|tx| {
                    let published = tx.read(FLAG)?;
                    if published != 0 {
                        Ok(Some(tx.read(DATA)?))
                    } else {
                        Ok(None)
                    }
                });
                if let Some(data) = seen {
                    return data;
                }
                std::hint::spin_loop();
            }
        });
        let mut h = stm.handle(0);
        h.write_direct(DATA, payload); // ν
        h.atomic(|tx| tx.write(FLAG, 1)); // T1: publish
        ok = consumer.join().unwrap() == payload;
    });
    ok
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000);

    // ---- Fig 2: publication, one-shot, many trials -------------------------
    let mut violations = 0u64;
    for i in 1..=trials {
        if !publication_trial(i) {
            violations += 1;
        }
    }
    println!("Fig 2 publication: {violations} violations in {trials} trials");
    assert_eq!(violations, 0, "publication must be safe without fences");

    // ---- Sec 2.2: privatize, modify, publish back --------------------------
    // A worker transactionally adds 2 while the region is shared; the owner
    // privatizes (flag + fence), checks/maintains even parity directly, and
    // publishes back. Any delayed commit or doomed read would break parity.
    let stm = Tl2Stm::new(2, 2);
    let rounds = trials * 10;
    let mut audit_failures = 0u64;
    std::thread::scope(|s| {
        let stm1 = stm.clone();
        s.spawn(move || {
            let mut h = stm1.handle(1);
            for _ in 0..rounds {
                h.atomic(|tx| {
                    if tx.read(FLAG)? == 0 {
                        let v = tx.read(DATA)?;
                        tx.write(DATA, v + 2)?;
                    }
                    Ok(())
                });
            }
        });
        let mut h = stm.handle(0);
        for _ in 0..rounds / 10 {
            h.atomic(|tx| tx.write(FLAG, 1)); // privatize
            h.fence();
            let v = h.read_direct(DATA);
            if !v.is_multiple_of(2) {
                audit_failures += 1;
            }
            h.write_direct(DATA, v + 2);
            h.atomic(|tx| tx.write(FLAG, 0)); // publish back (xpo;txwr)
        }
    });
    println!(
        "Sec 2.2 privatize-modify-publish: {audit_failures} parity failures in {} rounds",
        rounds / 10
    );
    assert_eq!(audit_failures, 0);
    println!("ok — both idioms safe under the paper's DRF discipline");
}
