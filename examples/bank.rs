//! A realistic application scenario: a concurrent bank with transactional
//! transfers, read-only audits, and a *privatized batch settlement* — the
//! workload the paper's introduction motivates (mixed transactional and
//! non-transactional access for performance).
//!
//! Accounts live in STM registers. Transfers and audits are transactions.
//! Periodically the settlement thread privatizes the whole book (a flag +
//! transactional fence), applies a batch of adjustments with fast
//! uninstrumented writes, and publishes the book back.
//!
//! Run with: `cargo run --release -p tm-examples --bin bank [accounts] [seconds]`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tm_stm::prelude::*;

const FLAG: usize = 0; // 0 = open, 1 = settling (privatized)

fn main() {
    let accounts: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let secs: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    let tellers = 3usize;
    let nthreads = tellers + 2; // + auditor + settlement

    let stm = Tl2Stm::new(1 + accounts, nthreads);
    let initial_total: u64 = 1_000 * accounts as u64;
    {
        let mut h = stm.handle(0);
        h.atomic(|tx| {
            for a in 0..accounts {
                tx.write(1 + a, 1_000)?;
            }
            Ok(())
        });
    }

    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut teller_txns = 0u64;
    let mut audits = 0u64;
    let mut settlements = 0u64;

    std::thread::scope(|s| {
        // Tellers: random transfers, but only while the book is open.
        let mut teller_handles = Vec::new();
        for t in 0..tellers {
            let stm = stm.clone();
            let stop = Arc::clone(&stop);
            teller_handles.push(s.spawn(move || {
                let mut h = stm.handle(t);
                let mut rng = (t as u64 + 1) * 0x9E37_79B9_7F4A_7C15;
                let mut done = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = 1 + (rng >> 33) as usize % accounts;
                    let to = 1 + (rng >> 13) as usize % accounts;
                    let amt = rng % 10;
                    h.atomic(|tx| {
                        if tx.read(FLAG)? == 1 {
                            return Ok(()); // book is being settled
                        }
                        let a = tx.read(from)?;
                        let b = tx.read(to)?;
                        if from != to && a >= amt {
                            tx.write(from, a - amt)?;
                            tx.write(to, b + amt)?;
                        }
                        Ok(())
                    });
                    done += 1;
                }
                done
            }));
        }

        // Auditor: read-only snapshots must always see the conserved total.
        let auditor = {
            let stm = stm.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut h = stm.handle(tellers);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // The auditor also respects the privatization flag: while
                    // the settler owns the book, reading it transactionally
                    // would race with the settler's direct writes (a doomed
                    // read could tear the snapshot).
                    let total = h.atomic(|tx| {
                        if tx.read(FLAG)? == 1 {
                            return Ok(None); // book privatized: skip audit
                        }
                        let mut sum = 0u64;
                        for a in 0..accounts {
                            sum += tx.read(1 + a)?;
                        }
                        Ok(Some(sum))
                    });
                    if let Some(total) = total {
                        assert_eq!(total, initial_total, "audit saw a torn state!");
                        n += 1;
                    }
                }
                n
            })
        };

        // Settlement: privatize the whole book, adjust it with fast direct
        // accesses, publish it back. The fence is what makes this safe.
        let settler = {
            let stm = stm.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut h = stm.handle(tellers + 1);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(50));
                    h.atomic(|tx| tx.write(FLAG, 1)); // close the book
                    h.fence(); // wait out in-flight transfers (Fig 1 discipline)
                               // Batch: move 1 unit from each odd account to account 0's
                               // neighbour — arbitrary but total-preserving, done with
                               // uninstrumented accesses.
                    let mut moved = 0u64;
                    for a in (1..accounts).step_by(2) {
                        let v = h.read_direct(1 + a);
                        if v > 0 {
                            h.write_direct(1 + a, v - 1);
                            moved += 1;
                        }
                    }
                    let v0 = h.read_direct(1);
                    h.write_direct(1, v0 + moved);
                    h.atomic(|tx| tx.write(FLAG, 0)); // publish back
                    n += 1;
                }
                n
            })
        };

        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);
        for th in teller_handles {
            teller_txns += th.join().unwrap();
        }
        audits = auditor.join().unwrap();
        settlements = settler.join().unwrap();
    });

    // Final audit.
    let mut h = stm.handle(0);
    let total = h.atomic(|tx| {
        let mut sum = 0u64;
        for a in 0..accounts {
            sum += tx.read(1 + a)?;
        }
        Ok(sum)
    });
    println!("bank run: {accounts} accounts, {secs}s");
    println!("  teller transactions : {teller_txns}");
    println!("  audits              : {audits} (all saw total = {initial_total})");
    println!("  privatized batches  : {settlements}");
    println!("  final total         : {total}");
    assert_eq!(total, initial_total, "money was created or destroyed!");
    println!("ok — conservation held under mixed transactional/direct access");
}
